(* Dynamic Hilbert R-tree tests: invariants (Hilbert order, LHV, MBRs),
   exact query answers under long random insert/delete/query
   interleavings, high utilization from 2-to-3 splits, and survival of
   degenerate inputs. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Hrt = Prt_rtree.Hilbert_rtree

let make () =
  Hrt.create
    (Prt_storage.Buffer_pool.create ~capacity:4096
       (Prt_storage.Pager.create_memory ~page_size:Helpers.small_page_size ()))

let brute_force model window =
  Hashtbl.fold
    (fun id r acc -> if Rect.intersects r window then id :: acc else acc)
    model []
  |> List.sort Int.compare

let test_insert_query () =
  let t = make () in
  let entries = Helpers.random_entries ~n:500 ~seed:1 in
  Array.iter (fun e -> Hrt.insert t (Prt_rtree.Entry.rect e) (Prt_rtree.Entry.id e)) entries;
  Hrt.validate t;
  Alcotest.(check int) "count" 500 (Hrt.count t);
  let queries = Helpers.random_queries ~n:40 ~seed:2 in
  Array.iter
    (fun q ->
      let ids, _ = Hrt.query_ids t q in
      Alcotest.(check (list int)) "query vs oracle" (Helpers.brute_force entries q)
        (List.sort Int.compare ids))
    queries

let test_incremental_validation () =
  let t = make () in
  let entries = Helpers.random_entries ~n:300 ~seed:3 in
  Array.iteri
    (fun i e ->
      Hrt.insert t (Prt_rtree.Entry.rect e) (Prt_rtree.Entry.id e);
      if (i + 1) mod 60 = 0 then Hrt.validate t)
    entries;
  Hrt.validate t

let test_utilization_via_two_to_three () =
  (* 2-to-3 splits should keep nodes noticeably fuller than Guttman's
     ~50-70%: count leaves against the minimum possible. *)
  let t = make () in
  let n = 2000 in
  let entries = Helpers.random_entries ~n ~seed:4 in
  Array.iter (fun e -> Hrt.insert t (Prt_rtree.Entry.rect e) (Prt_rtree.Entry.id e)) entries;
  Hrt.validate t;
  (* Utilization proxy: visited leaves for the whole world ~ total
     leaves; compare with ceil(n/cap). *)
  let world = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0 in
  let _, stats = Hrt.query_ids t world in
  let cap = (Helpers.small_page_size - 3) / 48 in
  let min_leaves = (n + cap - 1) / cap in
  let util = float_of_int min_leaves /. float_of_int stats.Hrt.leaf_visited in
  Alcotest.(check bool) (Printf.sprintf "utilization %.2f >= 0.6" util) true (util >= 0.6)

let test_delete_all () =
  let t = make () in
  let entries = Helpers.random_entries ~n:400 ~seed:5 in
  Array.iter (fun e -> Hrt.insert t (Prt_rtree.Entry.rect e) (Prt_rtree.Entry.id e)) entries;
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) "deleted" true
        (Hrt.delete t (Prt_rtree.Entry.rect e) (Prt_rtree.Entry.id e));
      if (i + 1) mod 80 = 0 then Hrt.validate t)
    entries;
  Alcotest.(check int) "empty" 0 (Hrt.count t);
  Alcotest.(check int) "height collapsed" 1 (Hrt.height t);
  Hrt.validate t

let test_delete_missing () =
  let t = make () in
  Hrt.insert t (Rect.point 0.5 0.5) 1;
  Alcotest.(check bool) "absent" false (Hrt.delete t (Rect.point 0.4 0.4) 2);
  Alcotest.(check int) "count" 1 (Hrt.count t)

let test_mixed_model () =
  let t = make () in
  let rng = Rng.create 6 in
  let model : (int, Rect.t) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  for step = 1 to 900 do
    let p = Rng.float rng 1.0 in
    if p < 0.55 || Hashtbl.length model = 0 then begin
      let r = Helpers.random_rect rng in
      Hashtbl.replace model !next_id r;
      Hrt.insert t r !next_id;
      incr next_id
    end
    else if p < 0.8 then begin
      let ids = Hashtbl.fold (fun id _ acc -> id :: acc) model [] in
      let id = List.nth ids (Rng.int rng (List.length ids)) in
      let r = Hashtbl.find model id in
      Hashtbl.remove model id;
      Alcotest.(check bool) "delete" true (Hrt.delete t r id)
    end
    else begin
      let q = Helpers.random_rect rng in
      let ids, _ = Hrt.query_ids t q in
      Alcotest.(check (list int)) "query vs model" (brute_force model q)
        (List.sort Int.compare ids)
    end;
    Alcotest.(check int) "count" (Hashtbl.length model) (Hrt.count t);
    if step mod 150 = 0 then Hrt.validate t
  done;
  Hrt.validate t

let test_duplicates_and_identical_keys () =
  (* Identical rectangles share a Hilbert key; splits must still work. *)
  let t = make () in
  let r = Rect.make ~xmin:0.25 ~ymin:0.25 ~xmax:0.3 ~ymax:0.3 in
  for i = 0 to 199 do
    Hrt.insert t r i
  done;
  Hrt.validate t;
  let ids, _ = Hrt.query_ids t r in
  Alcotest.(check int) "all stored" 200 (List.length ids);
  for i = 0 to 99 do
    Alcotest.(check bool) "deleted" true (Hrt.delete t r i)
  done;
  Hrt.validate t;
  let ids, _ = Hrt.query_ids t r in
  Alcotest.(check int) "half remain" 100 (List.length ids)

let test_outside_world_clamps () =
  (* Rectangles outside the quantization frame clamp but stay correct. *)
  let t = make () in
  Hrt.insert t (Rect.make ~xmin:5.0 ~ymin:5.0 ~xmax:6.0 ~ymax:6.0) 1;
  Hrt.insert t (Rect.make ~xmin:(-3.0) ~ymin:(-3.0) ~xmax:(-2.0) ~ymax:(-2.0)) 2;
  Hrt.insert t (Rect.point 0.5 0.5) 3;
  Hrt.validate t;
  let ids, _ = Hrt.query_ids t (Rect.make ~xmin:4.0 ~ymin:4.0 ~xmax:7.0 ~ymax:7.0) in
  Alcotest.(check (list int)) "outside found" [ 1 ] ids

let test_query_cost_reasonable () =
  (* The dynamic Hilbert tree must be a real index: small queries touch
     few leaves. *)
  let t = make () in
  let entries = Prt_workloads.Datasets.uniform_points ~n:3000 ~seed:7 in
  Array.iter (fun e -> Hrt.insert t (Prt_rtree.Entry.rect e) (Prt_rtree.Entry.id e)) entries;
  let q = Rect.make ~xmin:0.4 ~ymin:0.4 ~xmax:0.45 ~ymax:0.45 in
  let _, stats = Hrt.query_ids t q in
  let world = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0 in
  let _, all = Hrt.query_ids t world in
  Alcotest.(check bool)
    (Printf.sprintf "small query %d of %d leaves" stats.Hrt.leaf_visited all.Hrt.leaf_visited)
    true
    (stats.Hrt.leaf_visited * 5 < all.Hrt.leaf_visited)

let suite =
  [
    Alcotest.test_case "insert and query" `Quick test_insert_query;
    Alcotest.test_case "incremental validation" `Quick test_incremental_validation;
    Alcotest.test_case "2-to-3 splits keep utilization high" `Quick
      test_utilization_via_two_to_three;
    Alcotest.test_case "delete all" `Quick test_delete_all;
    Alcotest.test_case "delete missing" `Quick test_delete_missing;
    Alcotest.test_case "mixed ops vs model" `Quick test_mixed_model;
    Alcotest.test_case "duplicate keys" `Quick test_duplicates_and_identical_keys;
    Alcotest.test_case "outside world clamps" `Quick test_outside_world_clamps;
    Alcotest.test_case "query cost reasonable" `Quick test_query_cost_reasonable;
  ]
