(* Bounded crash-matrix smoke: `dune build @crash-smoke`.

   Sweeps every physical page-write kill point of an index build, an
   insert and a delete (each operation killed at write 0, 1, 2, ... until
   it survives), reopening and fsck-ing the file after every simulated
   crash.  The invariant checked at every kill point is the PR's
   headline guarantee: the reopened index is exactly the pre-operation
   or the post-operation tree — never a hybrid, never a silent wrong
   answer.  Exits non-zero on any violation. *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Failpoint = Prt_storage.Failpoint
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Dynamic = Prt_rtree.Dynamic
module Index_file = Prt_rtree.Index_file
module Prtree = Prt_prtree.Prtree
module Rng = Prt_util.Rng

let page_size = 512
let n = 400

let entries =
  let rng = Rng.create 2024 in
  Array.init n (fun i ->
      let x = Rng.float rng 1.0 and y = Rng.float rng 1.0 in
      Entry.make
        (Rect.make ~xmin:x ~ymin:y
           ~xmax:(Float.min 1.0 (x +. 0.02))
           ~ymax:(Float.min 1.0 (y +. 0.02)))
        i)

let everything = Rect.make ~xmin:(-1e9) ~ymin:(-1e9) ~xmax:1e9 ~ymax:1e9

let ids tree =
  let out = ref [] in
  ignore (Rtree.query tree everything ~f:(fun e -> out := Entry.id e :: !out));
  List.sort Int.compare !out

let copy_file src dst =
  let ic = open_in_bin src in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc data;
  close_out oc

let violations = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr violations;
      Printf.printf "VIOLATION: %s\n%!" msg)
    fmt

(* Sweep the build: a crashed build must never open to a tree. *)
let sweep_build path =
  let kill_points = ref 0 in
  let k = ref 0 in
  let finished = ref false in
  while not !finished do
    (try Sys.remove path with Sys_error _ -> ());
    let fp = Failpoint.create (Failpoint.crash_after !k) in
    (match
       Index_file.create ~page_size ~crash:fp path ~build:(fun pool -> Prtree.load pool entries)
     with
    | idx ->
        Index_file.close idx;
        finished := true
    | exception Failpoint.Simulated_crash _ -> (
        incr kill_points;
        match Index_file.open_ ~page_size path with
        | idx ->
            fail "build killed at write %d opened to a %d-entry tree" !k
              (Rtree.count (Index_file.tree idx));
            Index_file.close idx
        | exception (Failure _ | Invalid_argument _) -> ()));
    incr k
  done;
  Printf.printf "build:  %3d kill points, all recognized as 'no index yet'\n%!" !kill_points

(* Sweep one mutation over a pristine copy per kill point. *)
let sweep_mutation ~name ~mutate ~pre ~post pristine work =
  let kill_points = ref 0 and rolled_back = ref 0 and committed = ref 0 in
  let fsck_sound = ref 0 in
  let k = ref 0 in
  let finished = ref false in
  while not !finished do
    copy_file pristine work;
    let fp = Failpoint.create (Failpoint.crash_after !k) in
    let idx = Index_file.open_ ~page_size ~crash:fp work in
    (match Index_file.update idx mutate with
    | _ ->
        Index_file.close idx;
        finished := true
    | exception Failpoint.Simulated_crash _ ->
        incr kill_points;
        let report = Index_file.fsck ~page_size work in
        if report.Index_file.fsck_tree_ok then incr fsck_sound
        else
          fail "%s killed at write %d: fsck found no sound tree (%s)" name !k
            (Option.value ~default:"?" report.Index_file.fsck_tree_error);
        let idx = Index_file.open_ ~page_size work in
        let got = ids (Index_file.tree idx) in
        Index_file.close idx;
        if got = pre then incr rolled_back
        else if got = post then incr committed
        else fail "%s killed at write %d: hybrid state with %d entries" name !k (List.length got));
    incr k
  done;
  Printf.printf "%s: %3d kill points (%d rolled back / %d committed), fsck sound at %d\n%!" name
    !kill_points !rolled_back !committed !fsck_sound

let () =
  let tmp suffix = Filename.temp_file "prt_crash_smoke" suffix in
  let pristine = tmp ".idx" and work = tmp ".idx" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ pristine; work ])
    (fun () ->
      sweep_build pristine;
      (* [pristine] now holds the completed build. *)
      let pre = List.init n Fun.id in
      let fresh = Entry.make (Rect.make ~xmin:0.5 ~ymin:0.5 ~xmax:0.52 ~ymax:0.52) 1_000_000 in
      sweep_mutation ~name:"insert"
        ~mutate:(fun tree -> Dynamic.insert tree fresh)
        ~pre
        ~post:(List.sort Int.compare (1_000_000 :: pre))
        pristine work;
      sweep_mutation ~name:"delete"
        ~mutate:(fun tree -> ignore (Dynamic.delete tree entries.(n / 2)))
        ~pre
        ~post:(List.filter (fun i -> i <> n / 2) pre)
        pristine work;
      if !violations > 0 then begin
        Printf.printf "crash smoke FAILED: %d violation(s)\n" !violations;
        exit 1
      end;
      print_endline "crash smoke OK: every kill point recovered to pre-op or post-op")
