(* Adversarial-input property tests: every loader (including both PR
   builders and the dynamic path) must answer queries exactly on inputs
   chosen to break tie-handling and partitioning — axis-aligned grids,
   collinear points, heavy duplicates, nested rectangles, flagpoles, and
   the Theorem 3 construction. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Datasets = Prt_workloads.Datasets

(* --- adversarial dataset families --- *)

let grid_points ~n ~seed =
  ignore seed;
  let side = max 1 (int_of_float (sqrt (float_of_int n))) in
  Array.init n (fun i ->
      let x = float_of_int (i mod side) /. float_of_int side in
      let y = float_of_int (i / side) /. float_of_int side in
      Entry.make (Rect.point x y) i)

let collinear_x ~n ~seed =
  let rng = Rng.create seed in
  Array.init n (fun i -> Entry.make (Rect.point (Rng.float rng 1.0) 0.5) i)

let heavy_duplicates ~n ~seed =
  let rng = Rng.create seed in
  (* Only 5 distinct rectangles. *)
  let protos =
    Array.init 5 (fun _ -> Helpers.random_rect rng)
  in
  Array.init n (fun i -> Entry.make protos.(Rng.int rng 5) i)

let nested ~n ~seed =
  ignore seed;
  (* Onion rings: rectangle i strictly inside rectangle i-1. *)
  Array.init n (fun i ->
      let inset = 0.4 *. float_of_int i /. float_of_int (max 1 n) in
      Entry.make
        (Rect.make ~xmin:inset ~ymin:inset ~xmax:(1.0 -. inset) ~ymax:(1.0 -. inset))
        i)

let families =
  [
    ("grid", grid_points);
    ("collinear", collinear_x);
    ("duplicates", heavy_duplicates);
    ("nested", nested);
    ("flagpoles", fun ~n ~seed -> Datasets.flagpoles ~n ~seed);
  ]

let builders =
  [
    ("h", fun pool entries -> Prt_rtree.Bulk_hilbert.load_h pool entries);
    ("h4", fun pool entries -> Prt_rtree.Bulk_hilbert.load_h4 pool entries);
    ("str", fun pool entries -> Prt_rtree.Bulk_str.load pool entries);
    ("tgs", fun pool entries -> Prt_rtree.Bulk_tgs.load pool entries);
    ("pr", fun pool entries -> Prt_prtree.Prtree.load pool entries);
    ( "pr-ext",
      fun pool entries ->
        let file = Entry.File.of_array (Prt_storage.Buffer_pool.pager pool) entries in
        Prt_prtree.Ext_build.load ~mem_records:200 pool file );
    ( "dynamic",
      fun pool entries ->
        let tree = Rtree.create_empty pool in
        Array.iter (Prt_rtree.Dynamic.insert tree) entries;
        tree );
  ]

let test_family (fname, make) (bname, build) () =
  List.iter
    (fun n ->
      let entries = make ~n ~seed:(n + 100) in
      let pool = Helpers.small_pool () in
      let tree = build pool entries in
      let s = Helpers.check_structure tree in
      Alcotest.(check int) (fname ^ "/" ^ bname ^ " entries") n s.Rtree.entries;
      (* Window queries, point queries on exact stored coordinates, and
         a full-world query. *)
      Helpers.check_tree_queries ~nqueries:15 ~seed:(n * 3) tree entries;
      if n > 0 then begin
        let probe = Entry.rect entries.(n / 2) in
        Helpers.check_query_matches_brute_force tree entries probe;
        Helpers.check_query_matches_brute_force tree entries
          (Rect.point (Rect.xmin probe) (Rect.ymin probe))
      end)
    [ 0; 1; 30; 300 ]

let test_worst_case_all_builders () =
  let wc = Datasets.worst_case ~columns_log2:5 ~b:14 in
  let entries = wc.Datasets.entries in
  List.iter
    (fun (bname, build) ->
      let pool = Helpers.small_pool () in
      let tree = build pool entries in
      ignore (Helpers.check_structure tree);
      let q = Datasets.worst_case_query wc ~row:7 in
      let result, _ = Rtree.query_list tree q in
      Alcotest.(check (list int)) (bname ^ " zero output") [] (Helpers.ids_of result);
      Helpers.check_tree_queries ~nqueries:10 ~seed:55 tree entries)
    builders

let test_dump_renders () =
  let entries = Helpers.random_entries ~n:40 ~seed:5 in
  let tree = Prt_prtree.Prtree.load (Helpers.small_pool ()) entries in
  let out = Format.asprintf "%t" (Rtree.dump tree) in
  Alcotest.(check bool) "mentions leaves" true
    (String.length out > 0
    && (let count = ref 0 in
        String.iteri (fun _ c -> if c = '\n' then incr count) out;
        !count >= 3))

let suite =
  List.concat_map
    (fun family ->
      List.map
        (fun builder ->
          let fname, _ = family and bname, _ = builder in
          Alcotest.test_case
            (Printf.sprintf "%s via %s" fname bname)
            `Quick (test_family family builder))
        builders)
    families
  @ [
      Alcotest.test_case "worst-case grid via all builders" `Quick test_worst_case_all_builders;
      Alcotest.test_case "dump renders" `Quick test_dump_renders;
    ]
