(* The serving tier under test.

   Codec half: encode/decode round-trips (unit and qcheck), adversarial
   frames (truncated, oversized, corrupted, unknown version/kind, bad
   payloads) always yielding typed [proto_error]s, and the streaming
   reader's fragmentation / stickiness behaviour.

   Server half: the event loop is driven one [Server.step] at a time
   over injected socketpair ends — no listeners, no extra domains — so
   every scenario (pipelining, quotas, overload, deadline-in-queue,
   drain, malformed frames, slow clients, kill-point crashes) replays
   deterministically, with the virtual clock standing in for time. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Deadline = Prt_util.Deadline
module Page = Prt_storage.Page
module Pager = Prt_storage.Pager
module Failpoint = Prt_storage.Failpoint
module Retry = Prt_storage.Retry
module Superblock = Prt_storage.Superblock
module Entry = Prt_rtree.Entry
module Index_file = Prt_rtree.Index_file
module Prtree = Prt_prtree.Prtree
module Wire = Prt_serve.Wire
module Quota = Prt_serve.Quota
module Server = Prt_serve.Server

(* --- wire codec --- *)

let roundtrip msg =
  match Wire.decode_all (Wire.encode msg) with
  | Ok m -> Alcotest.(check bool) "decode(encode) is the identity" true (m = msg)
  | Error e -> Alcotest.failf "round-trip failed: %a" Wire.pp_proto_error e

let sample_rect = Rect.make ~xmin:0.125 ~ymin:0.25 ~xmax:0.5 ~ymax:0.875

let sample_msgs =
  let hit i = Entry.make sample_rect i in
  [
    Wire.(Request (Query { id = 1; deadline_ms = 0; windows = [||] }));
    Wire.(
      Request
        (Query { id = 0xFFFFFF; deadline_ms = 2_500; windows = [| sample_rect; sample_rect |] }));
    Wire.(Request (Health_check { id = 2 }));
    Wire.(Request (Drain { id = 3 }));
    Wire.(Reply (Results { id = 4; results = [||] }));
    Wire.(
      Reply
        (Results
           {
             id = 5;
             results =
               [|
                 { qr_completeness = C_complete; qr_hits = [ hit 1; hit 2; hit 3 ] };
                 { qr_completeness = C_partial { skipped = 7 }; qr_hits = [] };
                 { qr_completeness = C_timed_out { skipped = 123 }; qr_hits = [ hit 9 ] };
               |];
           }));
    Wire.(
      Reply
        (Health_status
           {
             id = 6;
             health =
               {
                 h_conns = 3;
                 h_draining = true;
                 h_generation = 42;
                 h_breaker = B_open { cooldown_left = 17 };
                 h_quota_tokens = 12.5;
                 h_backend = "mmap";
                 h_mmap_served = 12_345;
                 h_mmap_crc_skipped = 12_000;
                 h_mmap_fallbacks = 2;
               };
           }));
    Wire.(
      Reply
        (Health_status
           {
             id = 7;
             health =
               {
                 h_conns = 0;
                 h_draining = false;
                 h_generation = 1;
                 h_breaker = B_half_open;
                 h_quota_tokens = Float.infinity;
                 h_backend = "pread";
                 h_mmap_served = 0;
                 h_mmap_crc_skipped = 0;
                 h_mmap_fallbacks = 0;
               };
           }));
    Wire.(
      Reply (Error { id = 8; code = E_overloaded; retry_after_ms = 50.0; detail = "queue full" }));
    Wire.(Reply (Error { id = 9; code = E_malformed; retry_after_ms = 0.0; detail = "" }));
  ]

let test_wire_roundtrip () = List.iter roundtrip sample_msgs

(* A random message drawn entirely from the scenario seed, covering
   every constructor; finite coordinates only (the codec rejects the
   rest by design, tested separately). *)
let msg_of_scenario (sc : Helpers.scenario) =
  let rng = Rng.create sc.Helpers.sc_seed in
  let rect () = Helpers.random_rect rng in
  let hits () = List.init (Rng.int rng 6) (fun _ -> Entry.make (rect ()) (Rng.int rng 1_000_000)) in
  let id = Rng.int rng 0xFFFFFF in
  let completeness () =
    match Rng.int rng 3 with
    | 0 -> Wire.C_complete
    | 1 -> Wire.C_partial { skipped = Rng.int rng 1000 }
    | _ -> Wire.C_timed_out { skipped = Rng.int rng 1000 }
  in
  match Rng.int rng 6 with
  | 0 ->
      Wire.(
        Request
          (Query
             {
               id;
               deadline_ms = Rng.int rng 100_000;
               windows = Array.init (1 + (sc.Helpers.sc_size mod 13)) (fun _ -> rect ());
             }))
  | 1 -> Wire.(Request (Health_check { id }))
  | 2 -> Wire.(Request (Drain { id }))
  | 3 ->
      Wire.(
        Reply
          (Results
             {
               id;
               results =
                 Array.init (sc.Helpers.sc_size mod 7) (fun _ ->
                     { Wire.qr_completeness = completeness (); qr_hits = hits () });
             }))
  | 4 ->
      let breaker =
        match Rng.int rng 3 with
        | 0 -> Wire.B_closed
        | 1 -> Wire.B_open { cooldown_left = Rng.int rng 64 }
        | _ -> Wire.B_half_open
      in
      Wire.(
        Reply
          (Health_status
             {
               id;
               health =
                 {
                   h_conns = Rng.int rng 100;
                   h_draining = Rng.int rng 2 = 0;
                   h_generation = Rng.int rng 10_000;
                   h_breaker = breaker;
                   h_quota_tokens = Rng.float rng 1000.0;
                   h_backend = (if Rng.int rng 2 = 0 then "mmap" else "pread");
                   h_mmap_served = Rng.int rng 1_000_000;
                   h_mmap_crc_skipped = Rng.int rng 1_000_000;
                   h_mmap_fallbacks = Rng.int rng 1_000;
                 };
             }))
  | _ ->
      let code =
        match Rng.int rng 6 with
        | 0 -> Wire.E_overloaded
        | 1 -> Wire.E_quota
        | 2 -> Wire.E_deadline
        | 3 -> Wire.E_malformed
        | 4 -> Wire.E_draining
        | _ -> Wire.E_too_large
      in
      let detail = String.init (Rng.int rng 32) (fun i -> Char.chr (32 + ((i * 7) mod 95))) in
      Wire.(Reply (Error { id; code; retry_after_ms = Rng.float rng 60_000.0; detail }))

let qcheck_wire_roundtrip =
  QCheck.Test.make ~name:"wire: random messages round-trip bit-exactly" ~count:300
    (Helpers.arbitrary_scenario ~max_size:40 ())
    (fun sc ->
      let msg = msg_of_scenario sc in
      match Wire.decode_all (Wire.encode msg) with Ok m -> m = msg | Error _ -> false)

(* Corrupting any single byte of a valid frame must yield a typed error
   (or, for a length-field corruption, an incomplete-frame verdict) —
   never an exception.  [decode] sees exactly the frame's bytes, so a
   bigger claimed length comes back as [`Need]. *)
let qcheck_wire_corruption =
  QCheck.Test.make ~name:"wire: single-byte corruption never raises, never desyncs" ~count:300
    (Helpers.arbitrary_scenario ~max_size:40 ())
    (fun sc ->
      let rng = Rng.create (sc.Helpers.sc_seed lxor 0x5eed) in
      let frame = Wire.encode (msg_of_scenario sc) in
      let pos = Rng.int rng (Bytes.length frame) in
      let flip = 1 + Rng.int rng 255 in
      Bytes.set frame pos (Char.chr (Char.code (Bytes.get frame pos) lxor flip));
      match Wire.decode frame ~pos:0 ~len:(Bytes.length frame) with
      | `Msg _ | `Need _ | `Error _ -> true)

let reseal frame =
  (* Recompute the trailer CRC after an intentional header/payload edit,
     so the test reaches the check *behind* the checksum. *)
  let plen = Bytes.length frame - 12 in
  let crc = Page.crc32c frame ~pos:4 ~len:(4 + plen) in
  Bytes.set_int32_le frame (8 + plen) (Int32.of_int (crc land 0xFFFFFFFF));
  frame

let check_error name expected got =
  let pp ppf = function
    | Ok m -> Fmt.pf ppf "Ok (id %d)" (Wire.msg_id m)
    | Error e -> Wire.pp_proto_error ppf e
  in
  if got <> Error expected then
    Alcotest.failf "%s: expected %a, got %a" name Wire.pp_proto_error expected pp got

let test_wire_adversarial () =
  let msg = Wire.(Request (Query { id = 77; deadline_ms = 100; windows = [| sample_rect |] })) in
  let frame () = Wire.encode msg in
  let f = frame () in
  let n = Bytes.length f in
  check_error "truncated"
    (Wire.Truncated { have = n - 1; need = n })
    (Wire.decode_all (Bytes.sub f 0 (n - 1)));
  let f = frame () in
  Bytes.set_int32_le f 0 0x7FFFFFFFl;
  check_error "oversized"
    (Wire.Oversized { length = 0x7FFFFFFF; limit = Wire.default_max_payload })
    (Wire.decode_all f);
  let f = frame () in
  Bytes.set f 9 (Char.chr (Char.code (Bytes.get f 9) lxor 0x40));
  check_error "bit flip in payload" Wire.Bad_crc (Wire.decode_all f);
  let f = frame () in
  Bytes.set f 4 '\009';
  check_error "unknown version" (Wire.Unknown_version 9) (Wire.decode_all (reseal f));
  let f = frame () in
  Bytes.set f 5 '\099';
  check_error "unknown kind" (Wire.Unknown_kind 99) (Wire.decode_all (reseal f));
  (* Payload validation behind a clean CRC: non-finite coordinate,
     inverted rectangle, lying window count, unknown error code. *)
  let f = frame () in
  Bytes.set_int64_le f 20 (Int64.bits_of_float Float.nan);
  (match Wire.decode_all (reseal f) with
  | Error (Wire.Bad_payload _) -> ()
  | r -> check_error "nan coordinate" (Wire.Bad_payload "non-finite coordinate") r);
  let inverted =
    (* xmin/xmax swapped relative to [sample_rect]. *)
    let f = frame () in
    Bytes.set_int64_le f 20 (Int64.bits_of_float 0.9);
    reseal f
  in
  (match Wire.decode_all inverted with
  | Error (Wire.Bad_payload _) -> ()
  | r -> check_error "inverted rect" (Wire.Bad_payload "inverted rectangle") r);
  let f = frame () in
  Bytes.set_int32_le f 16 1000l;
  (match Wire.decode_all (reseal f) with
  | Error (Wire.Bad_payload _) -> ()
  | r -> check_error "lying count" (Wire.Bad_payload "count exceeds payload") r);
  let err = Wire.(Reply (Error { id = 1; code = E_quota; retry_after_ms = 1.0; detail = "x" })) in
  let f = Wire.encode err in
  Bytes.set f 12 '\250';
  (match Wire.decode_all (reseal f) with
  | Error (Wire.Bad_payload _) -> ()
  | r -> check_error "unknown error code" (Wire.Bad_payload "unknown error code") r)

let test_wire_reader () =
  let m1 = List.nth sample_msgs 1 and m2 = List.nth sample_msgs 5 in
  let stream = Bytes.cat (Wire.encode m1) (Wire.encode m2) in
  let r = Wire.Reader.create () in
  let got = ref [] in
  (* One byte at a time: messages must pop out exactly at their frame
     boundaries, regardless of fragmentation. *)
  Bytes.iteri
    (fun i _ ->
      Wire.Reader.feed r stream i 1;
      match Wire.Reader.next r with
      | `Msg m -> got := m :: !got
      | `Need_more -> ()
      | `Error e -> Alcotest.failf "unexpected reader error: %a" Wire.pp_proto_error e)
    stream;
  (match List.rev !got with
  | [ a; b ] ->
      Alcotest.(check bool) "first message survives fragmentation" true (a = m1);
      Alcotest.(check bool) "second message survives fragmentation" true (b = m2)
  | l -> Alcotest.failf "expected 2 messages, got %d" (List.length l));
  Alcotest.(check int) "no bytes left buffered" 0 (Wire.Reader.buffered r);
  (* A framing error is sticky: the stream is unsynchronized, feeding
     more valid bytes must not resynchronize it. *)
  let bad = reseal (Bytes.cat (Wire.encode m1) Bytes.empty) in
  Bytes.set bad 4 '\007';
  let bad = reseal bad in
  let r = Wire.Reader.create () in
  Wire.Reader.feed r bad 0 (Bytes.length bad);
  (match Wire.Reader.next r with
  | `Error (Wire.Unknown_version 7) -> ()
  | _ -> Alcotest.fail "expected a version error");
  let good = Wire.encode m1 in
  Wire.Reader.feed r good 0 (Bytes.length good);
  match Wire.Reader.next r with
  | `Error (Wire.Unknown_version 7) -> ()
  | _ -> Alcotest.fail "reader error must be sticky"

(* --- quotas --- *)

let test_quota () =
  let q = Quota.create ~now:0.0 ~rate:2.0 ~burst:10.0 () in
  Alcotest.(check (float 1e-9)) "full at creation" 10.0 (Quota.tokens q ~now:0.0);
  (match Quota.try_take q ~now:0.0 ~cost:10.0 with
  | `Ok rest -> Alcotest.(check (float 1e-9)) "drained" 0.0 rest
  | `Retry_after_ms _ -> Alcotest.fail "burst take must succeed");
  (match Quota.try_take q ~now:0.0 ~cost:1.0 with
  | `Retry_after_ms hint -> Alcotest.(check (float 1e-6)) "hint = shortfall/rate" 500.0 hint
  | `Ok _ -> Alcotest.fail "empty bucket must reject");
  (* Refill is continuous: after 1s at 2 tokens/s the same take fits. *)
  (match Quota.try_take q ~now:1.0 ~cost:2.0 with
  | `Ok rest -> Alcotest.(check (float 1e-9)) "refilled exactly rate*dt" 0.0 rest
  | `Retry_after_ms _ -> Alcotest.fail "refilled bucket must admit");
  (* The clock never runs backwards inside the bucket. *)
  (match Quota.try_take q ~now:0.5 ~cost:0.5 with
  | `Retry_after_ms _ -> ()
  | `Ok _ -> Alcotest.fail "a rewound clock must not mint tokens");
  let fixed = Quota.create ~now:0.0 ~rate:0.0 ~burst:4.0 () in
  (match Quota.try_take fixed ~now:0.0 ~cost:4.0 with
  | `Ok _ -> ()
  | `Retry_after_ms _ -> Alcotest.fail "fixed budget take must succeed");
  (match Quota.try_take fixed ~now:1_000.0 ~cost:1.0 with
  | `Retry_after_ms hint ->
      Alcotest.(check bool) "no refill: retrying can never help" true (hint = Float.infinity)
  | `Ok _ -> Alcotest.fail "exhausted fixed budget must reject");
  match Quota.try_take q ~now:1.0 ~cost:100.0 with
  | `Retry_after_ms hint ->
      Alcotest.(check bool) "cost > burst can never fit" true (hint = Float.infinity)
  | `Ok _ -> Alcotest.fail "cost above burst must reject"

(* --- breaker health (the [prt stats] / health-reply accessor) --- *)

let test_breaker_health () =
  let policy =
    { Retry.default_policy with Retry.attempts = 1; breaker_threshold = 1; breaker_cooldown = 2 }
  in
  let eng = Retry.create ~policy () in
  let health () = Retry.breaker_health eng in
  let boom () =
    match Retry.run eng ~op:"test" (fun () -> raise (Pager.Io_error "boom")) with
    | _ -> Alcotest.fail "operation must fail"
    | exception Pager.Io_error _ -> ()
  in
  Alcotest.(check bool) "starts closed" true (health () = Retry.Breaker_closed);
  boom ();
  Alcotest.(check bool) "tripped: full cooldown ahead" true
    (health () = Retry.Breaker_open { cooldown_left = 2 });
  boom ();
  Alcotest.(check bool) "one rejection consumed" true
    (health () = Retry.Breaker_open { cooldown_left = 1 });
  boom ();
  Alcotest.(check bool) "cooldown spent: probe next" true
    (health () = Retry.Breaker_open { cooldown_left = 0 });
  (* The next operation runs as the half-open probe — observable from
     inside it — and closes the breaker on success. *)
  let seen = ref None in
  let v = Retry.run eng ~op:"probe" (fun () -> seen := Some (health ()); 7) in
  Alcotest.(check int) "probe result" 7 v;
  Alcotest.(check bool) "probe saw half-open" true (!seen = Some Retry.Breaker_half_open);
  Alcotest.(check bool) "probe success closes" true (health () = Retry.Breaker_closed);
  let labels =
    List.map
      (fun h -> Format.asprintf "%a" Retry.pp_breaker_health h)
      [ Retry.Breaker_closed; Retry.Breaker_open { cooldown_left = 3 }; Retry.Breaker_half_open ]
  in
  Alcotest.(check bool) "labels are distinct" true
    (List.length (List.sort_uniq compare labels) = 3)

(* --- server harness: manual stepping over injected socketpairs --- *)

let with_server ?chaos ?config ?(n = 300) f =
  let entries = Helpers.random_entries ~n ~seed:11 in
  let path = Filename.temp_file "prt_test_serve" ".idx" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) @@ fun () ->
  let idx =
    Index_file.create ~page_size:Helpers.small_page_size path ~build:(fun pool ->
        Prtree.load pool entries)
  in
  Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
  let srv = Server.create ?chaos ?config idx in
  let r = f srv idx entries in
  Alcotest.(check int) "no leaked snapshot pins" 0
    (Superblock.pin_count (Index_file.superblock idx));
  r

(* The client half of an injected socketpair: non-blocking reads feed a
   reader; EOF and resets are remembered, not raised. *)
type cend = { fd : Unix.file_descr; reader : Wire.Reader.t; mutable eof : bool }

let connect srv =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Server.inject srv a;
  Unix.set_nonblock b;
  { fd = b; reader = Wire.Reader.create (); eof = false }

let close_cend c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send_raw c buf =
  try
    let n = Unix.write c.fd buf 0 (Bytes.length buf) in
    Alcotest.(check int) "frame fully written" (Bytes.length buf) n
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

let send c req = send_raw c (Wire.encode (Wire.Request req))

let poll c out =
  let buf = Bytes.create 65536 in
  (try
     let rec go () =
       match Unix.read c.fd buf 0 (Bytes.length buf) with
       | 0 -> c.eof <- true
       | r ->
           Wire.Reader.feed c.reader buf 0 r;
           go ()
     in
     go ()
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> c.eof <- true);
  let rec drain () =
    match Wire.Reader.next c.reader with
    | `Msg m ->
        out := !out @ [ m ];
        drain ()
    | `Need_more | `Error _ -> ()
  in
  drain ()

(* Step the server (zero select timeout: everything is socketpair-local)
   until [pred] holds, polling every connection's client end. *)
let step_until ?(max_steps = 500) srv conns pred =
  let steps = ref 0 in
  while (not (pred ())) && !steps < max_steps do
    incr steps;
    ignore (Server.step srv ~timeout:0.0);
    List.iter (fun (c, out) -> poll c out) conns
  done;
  if not (pred ()) then Alcotest.fail "server event loop did not converge"

(* Returns the retry-after hint of the expected typed error reply. *)
let expect_error name code = function
  | Wire.Reply (Wire.Error { code = got; retry_after_ms; _ }) ->
      if got <> code then
        Alcotest.failf "%s: expected %s, got %s" name (Wire.error_code_label code)
          (Wire.error_code_label got);
      retry_after_ms
  | m -> Alcotest.failf "%s: expected an error reply, got id %d" name (Wire.msg_id m)

let test_server_query_oracle () =
  with_server @@ fun srv _idx entries ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_cend c) @@ fun () ->
  let windows = Helpers.random_queries ~n:12 ~seed:23 in
  send c (Wire.Query { id = 7; deadline_ms = 0; windows });
  let out = ref [] in
  step_until srv [ (c, out) ] (fun () -> List.length !out >= 1);
  (match !out with
  | [ Wire.Reply (Wire.Results { id; results }) ] ->
      Alcotest.(check int) "request id echoed" 7 id;
      Alcotest.(check int) "one result per window" (Array.length windows) (Array.length results);
      Array.iteri
        (fun i w ->
          (match results.(i).Wire.qr_completeness with
          | Wire.C_complete -> ()
          | _ -> Alcotest.fail "fault-free queries must be complete");
          Alcotest.(check (list int))
            "hits match the brute-force oracle" (Helpers.brute_force entries w)
            (Helpers.ids_of results.(i).Wire.qr_hits))
        windows
  | l -> Alcotest.failf "expected exactly one reply, got %d" (List.length l));
  let r = Server.report srv in
  Alcotest.(check int) "one request served" 1 r.Server.served;
  Alcotest.(check int) "window count recorded" (Array.length windows) r.Server.windows

let test_server_pipelining () =
  with_server @@ fun srv idx _entries ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_cend c) @@ fun () ->
  let w = Helpers.random_queries ~n:4 ~seed:5 in
  (* Three requests in one write: replies must come back in request
     order with ids echoed. *)
  let frames =
    Bytes.concat Bytes.empty
      [
        Wire.encode (Wire.Request (Wire.Query { id = 11; deadline_ms = 0; windows = w }));
        Wire.encode (Wire.Request (Wire.Health_check { id = 12 }));
        Wire.encode (Wire.Request (Wire.Query { id = 13; deadline_ms = 0; windows = w }));
      ]
  in
  send_raw c frames;
  let out = ref [] in
  step_until srv [ (c, out) ] (fun () -> List.length !out >= 3);
  (match !out with
  | [ Wire.Reply (Wire.Results { id = a; _ }); Wire.Reply (Wire.Health_status { id = b; health });
      Wire.Reply (Wire.Results { id = d; _ }) ] ->
      Alcotest.(check (list int)) "reply order = request order" [ 11; 12; 13 ] [ a; b; d ];
      Alcotest.(check int) "health reports the committed generation"
        (Superblock.generation (Index_file.superblock idx))
        health.Wire.h_generation;
      Alcotest.(check bool) "not draining" false health.Wire.h_draining;
      Alcotest.(check int) "one live connection" 1 health.Wire.h_conns;
      Alcotest.(check bool) "breaker healthy" true (health.Wire.h_breaker = Wire.B_closed);
      Alcotest.(check bool) "no quota: infinite tokens" true
        (health.Wire.h_quota_tokens = Float.infinity)
  | _ -> Alcotest.fail "expected Results / Health_status / Results in order");
  let r = Server.report srv in
  Alcotest.(check int) "two queries served" 2 r.Server.served;
  Alcotest.(check int) "one health served" 1 r.Server.health_served

let test_server_too_large () =
  let config = { Server.default_config with Server.max_windows = 2 } in
  with_server ~config @@ fun srv _idx _entries ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_cend c) @@ fun () ->
  send c (Wire.Query { id = 1; deadline_ms = 0; windows = Helpers.random_queries ~n:3 ~seed:1 });
  send c (Wire.Query { id = 2; deadline_ms = 0; windows = Helpers.random_queries ~n:2 ~seed:2 });
  let out = ref [] in
  step_until srv [ (c, out) ] (fun () -> List.length !out >= 2);
  (match !out with
  | [ first; second ] ->
      let hint = expect_error "3 windows vs cap 2" Wire.E_too_large first in
      Alcotest.(check (float 0.0)) "retrying cannot help" 0.0 hint;
      (match second with
      | Wire.Reply (Wire.Results { id = 2; _ }) -> ()
      | _ -> Alcotest.fail "the connection must survive an E_too_large rejection")
  | _ -> Alcotest.fail "expected two replies");
  Alcotest.(check int) "too_large counted" 1 (Server.report srv).Server.too_large

let test_server_quota () =
  Deadline.install_virtual ();
  Fun.protect ~finally:Deadline.uninstall_virtual @@ fun () ->
  let config =
    { Server.default_config with Server.quota_rate = 1000.0; quota_burst = 2.0 }
  in
  with_server ~config @@ fun srv _idx _entries ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_cend c) @@ fun () ->
  let w = Helpers.random_queries ~n:2 ~seed:3 in
  send c (Wire.Query { id = 1; deadline_ms = 0; windows = w });
  send c (Wire.Query { id = 2; deadline_ms = 0; windows = w });
  let out = ref [] in
  step_until srv [ (c, out) ] (fun () -> List.length !out >= 2);
  (match !out with
  | [ Wire.Reply (Wire.Results { id = 1; _ }); second ] ->
      let hint = expect_error "empty bucket" Wire.E_quota second in
      (* Frozen virtual clock, 2 tokens short at 1000/s: the hint is
         exactly 2ms. *)
      Alcotest.(check (float 1e-6)) "exact refill hint" 2.0 hint
  | _ -> Alcotest.fail "expected Results then E_quota");
  Alcotest.(check int) "quota shed counted" 1 (Server.report srv).Server.shed_quota;
  (* The bucket refills on the virtual clock: 10ms buys 10 tokens
     (capped at burst 2), so the retry is admitted. *)
  Deadline.advance_ms 10.0;
  send c (Wire.Query { id = 3; deadline_ms = 0; windows = w });
  step_until srv [ (c, out) ] (fun () -> List.length !out >= 3);
  match List.nth !out 2 with
  | Wire.Reply (Wire.Results { id = 3; _ }) -> ()
  | _ -> Alcotest.fail "refilled bucket must admit the retry"

let test_server_overload () =
  let config = { Server.default_config with Server.max_in_flight = 1 } in
  with_server ~config @@ fun srv _idx _entries ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_cend c) @@ fun () ->
  send c (Wire.Query { id = 1; deadline_ms = 0; windows = Helpers.random_queries ~n:2 ~seed:4 });
  send c (Wire.Query { id = 2; deadline_ms = 0; windows = Helpers.random_queries ~n:1 ~seed:5 });
  let out = ref [] in
  step_until srv [ (c, out) ] (fun () -> List.length !out >= 2);
  (match !out with
  | [ first; second ] ->
      let hint = expect_error "batch wider than max_in_flight" Wire.E_overloaded first in
      Alcotest.(check (float 1e-9)) "overload hint" Server.default_config.Server.overload_retry_ms
        hint;
      (match second with
      | Wire.Reply (Wire.Results { id = 2; _ }) -> ()
      | _ -> Alcotest.fail "a batch within the admission cap must run")
  | _ -> Alcotest.fail "expected two replies");
  Alcotest.(check int) "overload shed counted" 1 (Server.report srv).Server.shed_overload

let test_server_queue_shed () =
  let config = { Server.default_config with Server.max_queue = 1 } in
  with_server ~config @@ fun srv _idx _entries ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_cend c) @@ fun () ->
  let w = Helpers.random_queries ~n:1 ~seed:6 in
  let frames =
    Bytes.concat Bytes.empty
      (List.map
         (fun id -> Wire.encode (Wire.Request (Wire.Query { id; deadline_ms = 0; windows = w })))
         [ 1; 2; 3 ])
  in
  send_raw c frames;
  let out = ref [] in
  step_until srv [ (c, out) ] (fun () -> List.length !out >= 3);
  (* Newest-first shedding: the first request fills the queue and runs;
     the pipelined flood behind it is rejected with a retry hint. *)
  let by_id id = List.find (fun m -> Wire.msg_id m = id) !out in
  (match by_id 1 with
  | Wire.Reply (Wire.Results _) -> ()
  | _ -> Alcotest.fail "the queued request must still be served");
  ignore (expect_error "queue full (id 2)" Wire.E_overloaded (by_id 2));
  ignore (expect_error "queue full (id 3)" Wire.E_overloaded (by_id 3));
  Alcotest.(check int) "both floods shed" 2 (Server.report srv).Server.shed_overload

(* Deadline-in-queue shedding, deterministically: the chaos policy
   charges 10 virtual ms per read, so by the time the first
   connection's 5ms-deadline query is popped from the queue (after the
   second connection's read), its budget is already spent. *)
let test_server_deadline_shed () =
  Deadline.install_virtual ();
  Fun.protect ~finally:Deadline.uninstall_virtual @@ fun () ->
  let chaos = Failpoint.create (Failpoint.slow ~read_ms:10.0 ()) in
  with_server ~chaos @@ fun srv _idx _entries ->
  (* Injection order is adoption order, and reads scan conns
     newest-adopted first: c1 (injected second) is read before c2. *)
  let c2 = connect srv in
  let c1 = connect srv in
  Fun.protect ~finally:(fun () -> close_cend c1; close_cend c2) @@ fun () ->
  send c1 (Wire.Query { id = 1; deadline_ms = 5; windows = Helpers.random_queries ~n:1 ~seed:7 });
  send c2 (Wire.Health_check { id = 2 });
  let out1 = ref [] and out2 = ref [] in
  step_until srv [ (c1, out1); (c2, out2) ] (fun () ->
      List.length !out1 >= 1 && List.length !out2 >= 1);
  let hint = expect_error "expired while queued" Wire.E_deadline (List.hd !out1) in
  Alcotest.(check (float 0.0)) "no retry hint on deadline" 0.0 hint;
  (match List.hd !out2 with
  | Wire.Reply (Wire.Health_status _) -> ()
  | _ -> Alcotest.fail "the other connection is unaffected");
  let r = Server.report srv in
  Alcotest.(check int) "deadline shed counted" 1 r.Server.shed_deadline;
  Alcotest.(check int) "nothing executed late" 0 r.Server.served

let test_server_drain () =
  with_server @@ fun srv _idx entries ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_cend c) @@ fun () ->
  let w = Helpers.random_queries ~n:2 ~seed:8 in
  (* Query, drain, query — pipelined in one write.  The pre-drain query
     completes, the drain gets its health snapshot, the post-drain query
     is a typed E_draining, then the server shuts down by itself. *)
  let frames =
    Bytes.concat Bytes.empty
      [
        Wire.encode (Wire.Request (Wire.Query { id = 1; deadline_ms = 0; windows = w }));
        Wire.encode (Wire.Request (Wire.Drain { id = 2 }));
        Wire.encode (Wire.Request (Wire.Query { id = 3; deadline_ms = 0; windows = w }));
      ]
  in
  send_raw c frames;
  let out = ref [] in
  let finished = ref false in
  let steps = ref 0 in
  while (not !finished) && !steps < 500 do
    incr steps;
    if not (Server.step srv ~timeout:0.0) then finished := true;
    poll c out
  done;
  Alcotest.(check bool) "drain completes on its own" true !finished;
  (match !out with
  | [ Wire.Reply (Wire.Results { id = 1; results }); Wire.Reply (Wire.Health_status { id = 2; health });
      third ] ->
      Alcotest.(check int) "in-flight request ran to completion" (Array.length w)
        (Array.length results);
      Array.iteri
        (fun i window ->
          Alcotest.(check (list int))
            "pre-drain results are correct" (Helpers.brute_force entries window)
            (Helpers.ids_of results.(i).Wire.qr_hits))
        w;
      Alcotest.(check bool) "drain ack reports draining" true health.Wire.h_draining;
      let hint = expect_error "post-drain query" Wire.E_draining third in
      Alcotest.(check bool) "finite drain retry hint" true
        (Float.is_finite hint && hint >= 0.0)
  | l -> Alcotest.failf "expected 3 replies, got %d" (List.length l));
  poll c out;
  Alcotest.(check bool) "server closed the connection" true c.eof;
  let r = Server.report srv in
  Alcotest.(check int) "draining shed counted" 1 r.Server.shed_draining;
  Alcotest.(check int) "no forced closes on an idle drain" 0 r.Server.drain_forced

let test_server_malformed () =
  with_server @@ fun srv _idx _entries ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_cend c) @@ fun () ->
  let bad = Wire.encode (Wire.Request (Wire.Health_check { id = 5 })) in
  Bytes.set bad 9 (Char.chr (Char.code (Bytes.get bad 9) lxor 1));
  send_raw c bad;
  let out = ref [] in
  step_until srv [ (c, out) ] (fun () -> List.length !out >= 1 && c.eof);
  let hint = expect_error "corrupt frame" Wire.E_malformed (List.hd !out) in
  Alcotest.(check (float 0.0)) "malformed: no retry hint" 0.0 hint;
  let r = Server.report srv in
  Alcotest.(check int) "malformed counted" 1 r.Server.malformed;
  Alcotest.(check int) "connection closed" 1 r.Server.closed

let test_server_midframe_disconnect () =
  with_server @@ fun srv _idx entries ->
  let c = connect srv in
  let frame =
    Wire.encode
      (Wire.Request (Wire.Query { id = 1; deadline_ms = 0; windows = [| sample_rect |] }))
  in
  send_raw c (Bytes.sub frame 0 10);
  ignore (Server.step srv ~timeout:0.0);
  close_cend c;
  step_until srv [] (fun () -> (Server.report srv).Server.closed >= 1);
  let r = Server.report srv in
  Alcotest.(check int) "a vanished peer is not a malformed frame" 0 r.Server.malformed;
  Alcotest.(check int) "nothing served from half a frame" 0 r.Server.served;
  (* The server survives: a fresh connection still gets answers. *)
  let c2 = connect srv in
  Fun.protect ~finally:(fun () -> close_cend c2) @@ fun () ->
  let w = Helpers.random_queries ~n:1 ~seed:9 in
  send c2 (Wire.Query { id = 2; deadline_ms = 0; windows = w });
  let out = ref [] in
  step_until srv [ (c2, out) ] (fun () -> List.length !out >= 1);
  match List.hd !out with
  | Wire.Reply (Wire.Results { id = 2; results }) ->
      Alcotest.(check (list int))
        "post-disconnect queries are correct" (Helpers.brute_force entries w.(0))
        (Helpers.ids_of results.(0).Wire.qr_hits)
  | _ -> Alcotest.fail "expected results on the fresh connection"

(* A permanently stalled client (every write injected to accept zero
   bytes, 30 virtual ms charged per attempt) must be cut by the
   write timeout instead of pinning its reply buffers forever. *)
let test_server_slow_client () =
  Deadline.install_virtual ();
  Fun.protect ~finally:Deadline.uninstall_virtual @@ fun () ->
  let chaos =
    Failpoint.create
      { Failpoint.default with write_error = 1.0; max_consecutive = 1_000_000; write_delay_ms = 30.0 }
  in
  let config = { Server.default_config with Server.write_timeout_ms = 50.0 } in
  with_server ~chaos ~config @@ fun srv _idx _entries ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_cend c) @@ fun () ->
  send c (Wire.Query { id = 1; deadline_ms = 0; windows = Helpers.random_queries ~n:1 ~seed:10 });
  step_until srv [] (fun () -> (Server.report srv).Server.slow_closed >= 1);
  let r = Server.report srv in
  Alcotest.(check int) "slow client closed" 1 r.Server.slow_closed;
  Alcotest.(check int) "the query itself was served" 1 r.Server.served

(* An armed kill-point crash fires on the first reply write: the
   simulated process death propagates out of [step], and the index —
   queries run on per-batch pins — is left with nothing pinned and
   nothing corrupted. *)
let test_server_kill_point () =
  let chaos = Failpoint.create (Failpoint.crash_after 0) in
  with_server ~chaos @@ fun srv idx entries ->
  let c = connect srv in
  Fun.protect ~finally:(fun () -> close_cend c) @@ fun () ->
  send c (Wire.Query { id = 1; deadline_ms = 0; windows = Helpers.random_queries ~n:2 ~seed:12 });
  let crashed = ref false in
  (try
     for _ = 1 to 20 do
       ignore (Server.step srv ~timeout:0.0)
     done
   with Failpoint.Simulated_crash _ -> crashed := true);
  Alcotest.(check bool) "kill point fired" true !crashed;
  (* The crash modelled process death mid-reply: the index is untouched
     and immediately queryable. *)
  let w = (Helpers.random_queries ~n:1 ~seed:13).(0) in
  Helpers.check_query_matches_brute_force (Index_file.tree idx) entries w

(* A compact chaos property: under random socket faults (resets, short
   reads, stalled and torn writes) the server never raises, and a
   subsequent drain always terminates with nothing pinned.  The full
   matrix lives in serve_smoke.ml. *)
let qcheck_server_chaos =
  QCheck.Test.make
    ~name:"serve: random socket faults never escape a connection"
    ~count:(if Helpers.long_run then 25 else 6)
    (Helpers.arbitrary_scenario ~min_size:1 ~max_size:8 ())
    (fun sc ->
      let chaos = Helpers.fault_schedule ~seed:sc.Helpers.sc_seed ~rate:0.25 () in
      with_server ~chaos ~n:120 @@ fun srv _idx _entries ->
      let conns = List.init 2 (fun _ -> connect srv) in
      let windows = Helpers.random_queries ~n:4 ~seed:sc.Helpers.sc_seed in
      for i = 0 to sc.Helpers.sc_size - 1 do
        let c = List.nth conns (i mod 2) in
        send c (Wire.Query { id = i + 1; deadline_ms = 0; windows })
      done;
      for _ = 1 to 50 do
        ignore (Server.step srv ~timeout:0.0)
      done;
      List.iter close_cend conns;
      Server.request_drain srv;
      let steps = ref 0 in
      while Server.step srv ~timeout:0.0 && !steps < 500 do
        incr steps
      done;
      let r = Server.report srv in
      !steps < 500 && r.Server.closed >= r.Server.accepted)

let suite =
  [
    Alcotest.test_case "wire: representative messages round-trip" `Quick test_wire_roundtrip;
    Helpers.qcheck_case qcheck_wire_roundtrip;
    Helpers.qcheck_case qcheck_wire_corruption;
    Alcotest.test_case "wire: adversarial frames yield typed errors" `Quick test_wire_adversarial;
    Alcotest.test_case "wire: reader reassembles fragments, errors stick" `Quick test_wire_reader;
    Alcotest.test_case "quota: token bucket arithmetic" `Quick test_quota;
    Alcotest.test_case "retry: typed breaker health through its lifecycle" `Quick
      test_breaker_health;
    Alcotest.test_case "serve: queries match the oracle" `Quick test_server_query_oracle;
    Alcotest.test_case "serve: pipelined replies stay in order" `Quick test_server_pipelining;
    Alcotest.test_case "serve: window cap is a typed rejection" `Quick test_server_too_large;
    Alcotest.test_case "serve: quota rejections carry exact hints" `Quick test_server_quota;
    Alcotest.test_case "serve: admission control sheds with a hint" `Quick test_server_overload;
    Alcotest.test_case "serve: full queue sheds newest first" `Quick test_server_queue_shed;
    Alcotest.test_case "serve: queued deadlines expire before execution" `Quick
      test_server_deadline_shed;
    Alcotest.test_case "serve: graceful drain finishes in-flight work" `Quick test_server_drain;
    Alcotest.test_case "serve: malformed frames earn a reply then a close" `Quick
      test_server_malformed;
    Alcotest.test_case "serve: mid-frame disconnects are contained" `Quick
      test_server_midframe_disconnect;
    Alcotest.test_case "serve: stalled clients are cut by the write timeout" `Quick
      test_server_slow_client;
    Alcotest.test_case "serve: kill-point crash leaks no pins" `Quick test_server_kill_point;
    Helpers.qcheck_case qcheck_server_chaos;
  ]
