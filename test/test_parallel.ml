(* Multicore tests: the parallel sort and the parallel PR-tree build
   must produce results identical to their sequential counterparts. *)

module Rng = Prt_util.Rng
module Parallel = Prt_util.Parallel
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree

let test_parallel_sort_matches () =
  let rng = Rng.create 1 in
  List.iter
    (fun n ->
      let arr = Array.init n (fun _ -> Rng.int rng 1_000_000) in
      let seq = Array.copy arr and par = Array.copy arr in
      Array.sort Int.compare seq;
      Parallel.sort ~domains:4 ~cmp:Int.compare par;
      Alcotest.(check bool) (Printf.sprintf "n=%d identical" n) true (seq = par))
    [ 0; 1; 100; 5_000; 50_000 ]

let test_parallel_sort_total_order_determinism () =
  (* With a total order, the merge has no ties to resolve, so any domain
     count gives the same permutation. *)
  let rng = Rng.create 2 in
  let arr = Array.init 20_000 (fun i -> (Rng.int rng 50, i)) in
  let one = Array.copy arr and four = Array.copy arr and eight = Array.copy arr in
  Parallel.sort ~domains:1 ~cmp:compare one;
  Parallel.sort ~domains:4 ~cmp:compare four;
  Parallel.sort ~domains:8 ~cmp:compare eight;
  Alcotest.(check bool) "1 = 4 domains" true (one = four);
  Alcotest.(check bool) "4 = 8 domains" true (four = eight)

let test_both_runs_and_propagates () =
  let a, b = Parallel.both ~parallel:true (fun () -> 6 * 7) (fun () -> "ok") in
  Alcotest.(check int) "left" 42 a;
  Alcotest.(check string) "right" "ok" b;
  Alcotest.(check bool) "exception propagates" true
    (try
       ignore (Parallel.both ~parallel:true (fun () -> failwith "boom") (fun () -> ()));
       false
     with Failure _ -> true)

let leaves_signature tree =
  let acc = ref [] in
  Rtree.iter_nodes tree ~f:(fun ~depth ~id:_ node ->
      if Prt_rtree.Node.kind node = Prt_rtree.Node.Leaf then
        acc :=
          (depth, Array.to_list (Array.map Entry.id (Prt_rtree.Node.entries node))) :: !acc);
  List.sort compare !acc

let test_parallel_prtree_identical () =
  let entries = Helpers.random_entries ~n:20_000 ~seed:3 in
  let seq = Prt_prtree.Prtree.load ~domains:1 (Helpers.small_pool ()) entries in
  let par = Prt_prtree.Prtree.load ~domains:4 (Helpers.small_pool ()) entries in
  ignore (Helpers.check_structure par);
  Alcotest.(check bool) "identical leaf structure" true
    (leaves_signature seq = leaves_signature par)

let test_parallel_hilbert_identical () =
  let entries = Helpers.random_entries ~n:20_000 ~seed:4 in
  let seq = Prt_rtree.Bulk_hilbert.load_h ~domains:1 (Helpers.small_pool ()) entries in
  let par = Prt_rtree.Bulk_hilbert.load_h ~domains:4 (Helpers.small_pool ()) entries in
  ignore (Helpers.check_structure par);
  Alcotest.(check bool) "identical leaf structure" true
    (leaves_signature seq = leaves_signature par)

let test_parallel_prtree_queries () =
  let entries = Helpers.random_entries ~n:12_000 ~seed:5 in
  let par = Prt_prtree.Prtree.load ~domains:(Parallel.default_domains ()) (Helpers.small_pool ()) entries in
  Helpers.check_tree_queries ~nqueries:20 ~seed:6 par entries

(* Random sizes straddling the sequential cutoff (4096): below it
   [Parallel.sort] is [Array.sort]; above it the merge path must agree
   element-for-element (int arrays, so ties cannot distinguish runs). *)
let qcheck_sort_agrees =
  let gen_size =
    QCheck.Gen.(
      oneof [ int_range 0 12_288; map (fun d -> 4096 + d) (int_range (-64) 64) ])
  in
  QCheck.Test.make ~name:"Parallel.sort agrees with Array.sort around the 4096 cutoff" ~count:40
    (QCheck.make
       ~print:(fun (n, seed, domains) -> Printf.sprintf "n=%d seed=%d domains=%d" n seed domains)
       QCheck.Gen.(
         gen_size >>= fun n ->
         int_range 0 1_000_000 >>= fun seed ->
         oneofl [ 1; 2; 4 ] >>= fun domains -> return (n, seed, domains)))
    (fun (n, seed, domains) ->
      let rng = Rng.create seed in
      let arr = Array.init n (fun _ -> Rng.int rng 10_000) in
      let seq = Array.copy arr and par = Array.copy arr in
      Array.sort Int.compare seq;
      Parallel.sort ~domains ~cmp:Int.compare par;
      seq = par)

let suite =
  [
    Alcotest.test_case "parallel sort matches Array.sort" `Quick test_parallel_sort_matches;
    Helpers.qcheck_case qcheck_sort_agrees;
    Alcotest.test_case "parallel sort deterministic" `Quick
      test_parallel_sort_total_order_determinism;
    Alcotest.test_case "both: results and exceptions" `Quick test_both_runs_and_propagates;
    Alcotest.test_case "parallel PR-tree identical to sequential" `Quick
      test_parallel_prtree_identical;
    Alcotest.test_case "parallel Hilbert identical to sequential" `Quick
      test_parallel_hilbert_identical;
    Alcotest.test_case "parallel PR-tree queries correct" `Quick test_parallel_prtree_queries;
  ]
