(* PR-tree tests: pseudo-PR-tree structure (priority-leaf extremality,
   degree bounds, partition of the input), query exactness for both the
   pseudo tree and the real PR-tree, and empirical checks of the paper's
   guarantees — Lemma 2 / Theorem 1 (O(sqrt(N/B) + T/B) I/Os) and
   Theorem 3 (heuristic trees forced to visit every leaf while the
   PR-tree is not). *)

module Rect = Prt_geom.Rect
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Node = Prt_rtree.Node
module Pseudo = Prt_prtree.Pseudo
module Prtree = Prt_prtree.Prtree
module Bulk_hilbert = Prt_rtree.Bulk_hilbert
module Bulk_tgs = Prt_rtree.Bulk_tgs
module Datasets = Prt_workloads.Datasets

let b = 14 (* matches the small-page capacity used elsewhere in tests *)

(* --- pseudo-PR-tree structure --- *)

let test_pseudo_validate_and_size () =
  List.iter
    (fun n ->
      let entries = Helpers.random_entries ~n ~seed:(2 * n) in
      let t = Pseudo.build ~b entries in
      Pseudo.validate ~b t;
      Alcotest.(check int) "size" n (Pseudo.size t))
    [ 1; 5; 14; 15; 100; 500 ]

let test_pseudo_leaves_partition_input () =
  let entries = Helpers.random_entries ~n:300 ~seed:77 in
  let t = Pseudo.build ~b entries in
  let ids =
    Pseudo.leaves t |> List.concat_map (fun arr -> Array.to_list (Array.map Entry.id arr))
  in
  Alcotest.(check (list int)) "every entry in exactly one leaf"
    (List.init 300 Fun.id)
    (List.sort Int.compare ids)

let test_pseudo_priority_extremality () =
  (* Walk the tree keeping the invariant: each priority leaf's entries
     must all be at least as extreme (in its direction) as every entry
     stored deeper in the node after it. *)
  let entries = Helpers.random_entries ~n:400 ~seed:31 in
  let t = Pseudo.build ~b entries in
  let rec collect t acc =
    match t with
    | Pseudo.Leaf { entries; _ } -> Array.to_list entries @ acc
    | Pseudo.Node { children; _ } -> List.fold_left (fun acc c -> collect c acc) acc children
  in
  let rec check t =
    match t with
    | Pseudo.Leaf _ -> ()
    | Pseudo.Node { children; _ } ->
        (* For each priority leaf, every entry in the children after it
           must not be more extreme. *)
        let rec scan = function
          | [] -> ()
          | Pseudo.Leaf { entries = pl; priority = Some dim; _ } :: rest ->
              let later = List.concat_map (fun c -> collect c []) rest in
              let cmp = Pseudo.extreme_cmp dim in
              let least_extreme =
                Array.fold_left (fun acc e -> if cmp acc e < 0 then e else acc) pl.(0) pl
              in
              List.iter
                (fun e ->
                  Alcotest.(check bool) "priority leaf holds the extremes" true
                    (cmp least_extreme e <= 0))
                later;
              scan rest
          | _ :: rest -> scan rest
        in
        scan children;
        List.iter check children
  in
  check t

let test_pseudo_query_oracle () =
  let entries = Helpers.random_entries ~n:500 ~seed:3 in
  let t = Pseudo.build ~b entries in
  let queries = Helpers.random_queries ~n:50 ~seed:4 in
  Array.iter
    (fun q ->
      let acc = ref [] in
      ignore (Pseudo.query t q ~f:(fun e -> acc := e :: !acc));
      Alcotest.(check (list int)) "pseudo query matches brute force"
        (Helpers.brute_force entries q) (Helpers.ids_of !acc))
    queries

let test_pseudo_rejects_empty () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Pseudo.build ~b [||]);
       false
     with Invalid_argument _ -> true)

(* --- PR-tree --- *)

let test_prtree_structure_and_queries () =
  List.iter
    (fun n ->
      let entries = Helpers.random_entries ~n ~seed:(n + 1) in
      let pool = Helpers.small_pool () in
      let tree = Prtree.load pool entries in
      let s = Helpers.check_structure tree in
      Alcotest.(check int) "entries" n s.Rtree.entries;
      Helpers.check_tree_queries ~seed:(n * 7) tree entries)
    [ 0; 1; 13; 14; 15; 100; 700 ]

let prop_prtree_query_correct =
  QCheck.Test.make ~name:"prtree answers random queries exactly" ~count:30
    (QCheck.pair (Helpers.arbitrary_entries 400) QCheck.(int_range 0 1_000_000))
    (fun (entries, qseed) ->
      let query = Helpers.random_rect (Prt_util.Rng.create qseed) in
      let pool = Helpers.small_pool () in
      let tree = Prtree.load pool entries in
      let result, _ = Rtree.query_list tree query in
      Helpers.ids_of result = Helpers.brute_force entries query)

let test_prtree_duplicates () =
  let r = Rect.make ~xmin:0.1 ~ymin:0.1 ~xmax:0.2 ~ymax:0.2 in
  let entries = Array.init 200 (fun i -> Entry.make r i) in
  let pool = Helpers.small_pool () in
  let tree = Prtree.load pool entries in
  ignore (Helpers.check_structure tree);
  Helpers.check_query_matches_brute_force tree entries r

let test_prtree_points () =
  (* Degenerate rectangles (points) exercise all ties. *)
  let entries = Datasets.uniform_points ~n:400 ~seed:17 in
  let pool = Helpers.small_pool () in
  let tree = Prtree.load pool entries in
  ignore (Helpers.check_structure tree);
  Helpers.check_tree_queries ~seed:18 tree entries

(* --- the worst-case guarantee --- *)

(* Zero-output line queries on the Theorem-3 grid: the packed Hilbert
   tree must visit essentially all leaves; the PR-tree at most
   O(sqrt(N/B)). *)
let test_worst_case_guarantee () =
  let wc = Datasets.worst_case ~columns_log2:6 ~b in
  (* 64 columns x 14 rows = 896 points. *)
  let pool_h = Helpers.small_pool () and pool_pr = Helpers.small_pool () in
  let h_tree = Bulk_hilbert.load_h pool_h wc.Datasets.entries in
  let pr_tree = Prtree.load pool_pr wc.Datasets.entries in
  let h_struct = Helpers.check_structure h_tree in
  let pr_struct = Helpers.check_structure pr_tree in
  let query = Datasets.worst_case_query wc ~row:(b / 2) in
  (* The query must report nothing. *)
  Alcotest.(check (list int)) "zero output" [] (Helpers.brute_force wc.Datasets.entries query);
  let h_stats = Rtree.query_count h_tree query in
  let pr_stats = Rtree.query_count pr_tree query in
  Alcotest.(check int) "H reports nothing" 0 h_stats.Rtree.matched;
  Alcotest.(check int) "PR reports nothing" 0 pr_stats.Rtree.matched;
  (* H visits more than half of all leaves... *)
  Alcotest.(check bool)
    (Printf.sprintf "H visits most leaves (%d of %d)" h_stats.Rtree.leaf_visited h_struct.Rtree.leaves)
    true
    (2 * h_stats.Rtree.leaf_visited > h_struct.Rtree.leaves);
  (* ...while the PR-tree stays within a small multiple of sqrt(N/B). *)
  let n = Array.length wc.Datasets.entries in
  let bound = 8.0 *. sqrt (float_of_int n /. float_of_int b) in
  Alcotest.(check bool)
    (Printf.sprintf "PR visits %d <= %.0f leaves (of %d)" pr_stats.Rtree.leaf_visited bound
       pr_struct.Rtree.leaves)
    true
    (float_of_int pr_stats.Rtree.leaf_visited <= bound)

(* Lemma 2 / Theorem 1 empirically: across dataset sizes, zero-output
   line queries on uniform data visit O(sqrt(N/B)) leaves. We check the
   ratio (leaves visited) / sqrt(N/B) stays bounded as N grows 16x. *)
let test_sqrt_scaling () =
  let ratio n =
    let entries = Datasets.uniform_points ~n ~seed:5 in
    let pool = Helpers.small_pool () in
    let tree = Prtree.load pool entries in
    (* Vertical zero-width line queries: T is tiny, so visits are
       dominated by the sqrt term. *)
    let rng = Prt_util.Rng.create 6 in
    let total = ref 0 in
    let q = 20 in
    for _ = 1 to q do
      let x = Prt_util.Rng.float rng 1.0 in
      let line = Rect.make ~xmin:x ~ymin:0.0 ~xmax:x ~ymax:1.0 in
      total := !total + (Rtree.query_count tree line).Rtree.leaf_visited
    done;
    float_of_int !total /. float_of_int q /. sqrt (float_of_int n /. float_of_int b)
  in
  let r_small = ratio 500 and r_big = ratio 8000 in
  Alcotest.(check bool)
    (Printf.sprintf "sqrt scaling: ratio %.2f (N=500) vs %.2f (N=8000)" r_small r_big)
    true
    (r_big < 2.5 *. r_small && r_big < 6.0)

let test_prtree_count_iter () =
  let entries = Helpers.random_entries ~n:321 ~seed:9 in
  let pool = Helpers.small_pool () in
  let tree = Prtree.load pool entries in
  let seen = ref 0 in
  Rtree.iter tree ~f:(fun _ -> incr seen);
  Alcotest.(check int) "iter covers all" 321 !seen;
  Alcotest.(check int) "count" 321 (Rtree.count tree)

let suite =
  [
    Alcotest.test_case "pseudo: validate and size" `Quick test_pseudo_validate_and_size;
    Alcotest.test_case "pseudo: leaves partition input" `Quick test_pseudo_leaves_partition_input;
    Alcotest.test_case "pseudo: priority extremality" `Quick test_pseudo_priority_extremality;
    Alcotest.test_case "pseudo: query vs oracle" `Quick test_pseudo_query_oracle;
    Alcotest.test_case "pseudo: empty raises" `Quick test_pseudo_rejects_empty;
    Alcotest.test_case "prtree: structure and queries" `Quick test_prtree_structure_and_queries;
    Helpers.qcheck_case prop_prtree_query_correct;
    Alcotest.test_case "prtree: duplicates" `Quick test_prtree_duplicates;
    Alcotest.test_case "prtree: points" `Quick test_prtree_points;
    Alcotest.test_case "prtree: worst-case guarantee (Thm 3)" `Quick test_worst_case_guarantee;
    Alcotest.test_case "prtree: sqrt(N/B) scaling (Lemma 2)" `Quick test_sqrt_scaling;
    Alcotest.test_case "prtree: iter/count" `Quick test_prtree_count_iter;
  ]
