(* Logarithmic-method tests: component size discipline, exact query
   answers under long insert/delete interleavings (vs a model), page
   reclamation across merges, and bookkeeping validation. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Pager = Prt_storage.Pager
module Entry = Prt_rtree.Entry
module Logmethod = Prt_logmethod.Logmethod

let buffer_capacity = 14

let make () = (Helpers.small_pool (), ())

let test_insert_query_basic () =
  let pool, () = make () in
  let t = Logmethod.create ~buffer_capacity pool in
  let entries = Helpers.random_entries ~n:200 ~seed:1 in
  Array.iter (Logmethod.insert t) entries;
  Logmethod.validate t;
  Alcotest.(check int) "count" 200 (Logmethod.count t);
  let queries = Helpers.random_queries ~n:30 ~seed:2 in
  Array.iter
    (fun q ->
      let result, _ = Logmethod.query_list t q in
      Alcotest.(check (list int)) "query matches brute force" (Helpers.brute_force entries q)
        (Helpers.ids_of result))
    queries

let test_component_sizes () =
  (* Slot i must never exceed buffer_capacity * 2^i entries. *)
  let pool, () = make () in
  let t = Logmethod.create ~buffer_capacity pool in
  let entries = Helpers.random_entries ~n:500 ~seed:3 in
  Array.iter
    (fun e ->
      Logmethod.insert t e;
      List.iter
        (fun (level, size) ->
          Alcotest.(check bool)
            (Printf.sprintf "slot %d holds %d <= %d" level size (buffer_capacity * (1 lsl level)))
            true
            (size <= buffer_capacity * (1 lsl level)))
        (Logmethod.components t))
    entries;
  (* Logarithmically many components. *)
  Alcotest.(check bool) "few components" true (List.length (Logmethod.components t) <= 7)

let test_buffer_flush () =
  let pool, () = make () in
  let t = Logmethod.create ~buffer_capacity pool in
  let entries = Helpers.random_entries ~n:10 ~seed:4 in
  Array.iter (Logmethod.insert t) entries;
  Alcotest.(check int) "buffered" 10 (Logmethod.buffer_size t);
  Alcotest.(check (list (pair int int))) "no components yet" [] (Logmethod.components t);
  Logmethod.flush_buffer t;
  Alcotest.(check int) "buffer empty" 0 (Logmethod.buffer_size t);
  Alcotest.(check int) "one component" 1 (List.length (Logmethod.components t));
  Logmethod.validate t

let test_delete_from_buffer_and_components () =
  let pool, () = make () in
  let t = Logmethod.create ~buffer_capacity pool in
  let entries = Helpers.random_entries ~n:100 ~seed:5 in
  Array.iter (Logmethod.insert t) entries;
  (* Delete one guaranteed-buffered entry (the last inserted batch may
     be in the buffer or not; both paths must work). *)
  Array.iteri
    (fun i e ->
      if i mod 3 = 0 then
        Alcotest.(check bool) "delete succeeds" true (Logmethod.delete t e))
    entries;
  Logmethod.validate t;
  let expected = Array.to_list entries
    |> List.filteri (fun i _ -> i mod 3 <> 0)
    |> Array.of_list
  in
  Alcotest.(check int) "count" (Array.length expected) (Logmethod.count t);
  let queries = Helpers.random_queries ~n:20 ~seed:6 in
  Array.iter
    (fun q ->
      let result, _ = Logmethod.query_list t q in
      Alcotest.(check (list int)) "query after deletes" (Helpers.brute_force expected q)
        (Helpers.ids_of result))
    queries

let test_delete_missing () =
  let pool, () = make () in
  let t = Logmethod.create ~buffer_capacity pool in
  Array.iter (Logmethod.insert t) (Helpers.random_entries ~n:50 ~seed:7);
  Alcotest.(check bool) "absent id" false
    (Logmethod.delete t (Entry.make (Rect.point 0.5 0.5) 777));
  Alcotest.(check int) "count unchanged" 50 (Logmethod.count t)

let test_delete_all_triggers_rebuild () =
  let pool, () = make () in
  let t = Logmethod.create ~buffer_capacity pool in
  let entries = Helpers.random_entries ~n:300 ~seed:8 in
  Array.iter (Logmethod.insert t) entries;
  Array.iter (fun e -> ignore (Logmethod.delete t e)) entries;
  Logmethod.validate t;
  Alcotest.(check int) "empty" 0 (Logmethod.count t);
  let result, _ = Logmethod.query_list t (Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0) in
  Alcotest.(check (list int)) "nothing stored" [] (Helpers.ids_of result)

let test_of_entries () =
  let pool, () = make () in
  let entries = Helpers.random_entries ~n:150 ~seed:9 in
  let t = Logmethod.of_entries ~buffer_capacity pool entries in
  Logmethod.validate t;
  Alcotest.(check int) "count" 150 (Logmethod.count t);
  Alcotest.(check int) "single component" 1 (List.length (Logmethod.components t));
  let q = Helpers.random_rect (Rng.create 10) in
  let result, _ = Logmethod.query_list t q in
  Alcotest.(check (list int)) "query" (Helpers.brute_force entries q) (Helpers.ids_of result)

let test_duplicate_buffer_id () =
  let pool, () = make () in
  let t = Logmethod.create ~buffer_capacity pool in
  Logmethod.insert t (Entry.make (Rect.point 0.1 0.1) 1);
  Alcotest.(check bool) "duplicate id raises" true
    (try
       Logmethod.insert t (Entry.make (Rect.point 0.2 0.2) 1);
       false
     with Invalid_argument _ -> true)

let test_pages_reclaimed_across_merges () =
  (* Components are repeatedly destroyed by merges; their pages must be
     recycled, keeping total allocation proportional to the data. *)
  let pool, () = make () in
  let pager = Prt_storage.Buffer_pool.pager pool in
  let t = Logmethod.create ~buffer_capacity pool in
  let entries = Helpers.random_entries ~n:1000 ~seed:11 in
  Array.iter (Logmethod.insert t) entries;
  let data_pages = 1000 / buffer_capacity in
  let used = Pager.num_pages pager in
  Alcotest.(check bool)
    (Printf.sprintf "pages %d within 4x data pages %d" used data_pages)
    true
    (used < 4 * data_pages + 16)

let test_mixed_model () =
  let pool, () = make () in
  let t = Logmethod.create ~buffer_capacity pool in
  let rng = Rng.create 999 in
  let model : (int, Entry.t) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  for step = 1 to 600 do
    let p = Rng.float rng 1.0 in
    if p < 0.55 || Hashtbl.length model = 0 then begin
      let e = Entry.make (Helpers.random_rect rng) !next_id in
      incr next_id;
      Hashtbl.replace model (Entry.id e) e;
      Logmethod.insert t e
    end
    else if p < 0.8 then begin
      let ids = Hashtbl.fold (fun id _ acc -> id :: acc) model [] in
      let id = List.nth ids (Rng.int rng (List.length ids)) in
      let e = Hashtbl.find model id in
      Hashtbl.remove model id;
      Alcotest.(check bool) "delete succeeds" true (Logmethod.delete t e)
    end
    else begin
      let q = Helpers.random_rect rng in
      let expected =
        Hashtbl.fold
          (fun id e acc -> if Rect.intersects (Entry.rect e) q then id :: acc else acc)
          model []
        |> List.sort Int.compare
      in
      let result, _ = Logmethod.query_list t q in
      Alcotest.(check (list int)) "query matches model" expected (Helpers.ids_of result)
    end;
    Alcotest.(check int) "count matches model" (Hashtbl.length model) (Logmethod.count t);
    if step mod 150 = 0 then Logmethod.validate t
  done;
  Logmethod.validate t

let suite =
  [
    Alcotest.test_case "insert and query" `Quick test_insert_query_basic;
    Alcotest.test_case "component size discipline" `Quick test_component_sizes;
    Alcotest.test_case "buffer flush" `Quick test_buffer_flush;
    Alcotest.test_case "delete from buffer and components" `Quick
      test_delete_from_buffer_and_components;
    Alcotest.test_case "delete missing" `Quick test_delete_missing;
    Alcotest.test_case "delete all triggers rebuild" `Quick test_delete_all_triggers_rebuild;
    Alcotest.test_case "of_entries" `Quick test_of_entries;
    Alcotest.test_case "duplicate buffered id" `Quick test_duplicate_buffer_id;
    Alcotest.test_case "pages reclaimed across merges" `Quick test_pages_reclaimed_across_merges;
    Alcotest.test_case "mixed ops vs model" `Quick test_mixed_model;
  ]
