(* Shared helpers for the test suite: small-page pools (deep trees from
   few entries), faulty pools over a seeded fault schedule, brute-force
   query oracles, random dataset generators driven by the repository's
   deterministic RNG, and qcheck registration. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Failpoint = Prt_storage.Failpoint
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree

(* 512-byte pages -> capacity (512-16-3)/36 = 13 (16 bytes go to the
   page integrity trailer): multi-level trees appear at a few dozen
   entries already. *)
let small_page_size = 512

let small_pool () = Buffer_pool.create ~capacity:4096 (Pager.create_memory ~page_size:small_page_size ())

let default_pool () = Buffer_pool.create ~capacity:4096 (Pager.create_memory ())

(* The expensive qcheck runs only fire under `dune build @runtest-long`
   (which sets QCHECK_LONG); plain `dune runtest` stays fast. *)
let long_run = Sys.getenv_opt "QCHECK_LONG" <> None

let qcheck_case ?(long = false) test =
  ignore long;
  QCheck_alcotest.to_alcotest test

(* --- fault injection --- *)

(* Seeded fault schedule shared by the fault suites: every operation
   class faults with probability [rate], never more than
   [max_consecutive] times in a row, on a deterministic schedule derived
   from [seed]. *)
let fault_schedule ?(max_consecutive = 3) ~seed ~rate () =
  Failpoint.create (Failpoint.uniform ~seed ~max_consecutive rate)

(* A small-page in-memory pool whose pager injects faults per the given
   schedule; the pool's retry policy (attempts > max_consecutive) is
   what absorbs them.  Returns the failpoint too so tests can assert on
   the injected counters. *)
let faulty_pool ?(page_size = small_page_size) ?(capacity = 4096)
    ?(retry = Buffer_pool.default_retry) ~seed ~rate () =
  let fp = fault_schedule ~seed ~rate () in
  let pager = Pager.wrap_faulty (Pager.create_memory ~page_size ()) fp in
  (Buffer_pool.create ~capacity ~retry pager, fp)

(* Deterministic random rectangles in the unit square. *)
let random_rect rng =
  let x0 = Rng.float rng 1.0 and y0 = Rng.float rng 1.0 in
  let w = Rng.float rng 0.2 and h = Rng.float rng 0.2 in
  Rect.make ~xmin:x0 ~ymin:y0 ~xmax:(Float.min 1.0 (x0 +. w)) ~ymax:(Float.min 1.0 (y0 +. h))

let random_entries ~n ~seed =
  let rng = Rng.create seed in
  Array.init n (fun i -> Entry.make (random_rect rng) i)

let random_queries ~n ~seed =
  let rng = Rng.create seed in
  Array.init n (fun _ -> random_rect rng)

(* Brute-force oracle: sorted ids of entries intersecting the window. *)
let brute_force entries window =
  Array.to_list entries
  |> List.filter (fun e -> Rect.intersects (Entry.rect e) window)
  |> List.map Entry.id
  |> List.sort Int.compare

let ids_of result = List.sort Int.compare (List.map Entry.id result)

let check_query_matches_brute_force tree entries window =
  let result, _ = Rtree.query_list tree window in
  Alcotest.(check (list int)) "query result matches brute force" (brute_force entries window)
    (ids_of result)

(* Run a batch of random queries against a tree and its oracle. *)
let check_tree_queries ?(nqueries = 40) ~seed tree entries =
  let queries = random_queries ~n:nqueries ~seed in
  Array.iter (fun q -> check_query_matches_brute_force tree entries q) queries

let check_structure tree =
  match Rtree.validate tree with
  | structure -> structure
  | exception Rtree.Invalid msg -> Alcotest.failf "invalid tree: %s" msg

(* The shared oracle for differential suites: every named implementation
   must agree with the brute force on a batch of random windows. *)
type impl = { impl_name : string; impl_query : Rect.t -> int list }

let rtree_impl impl_name tree =
  { impl_name; impl_query = (fun q -> ids_of (fst (Rtree.query_list tree q))) }

let check_impls_agree ?(nqueries = 25) ~seed impls entries =
  let rng = Rng.create seed in
  for _ = 1 to nqueries do
    let q = random_rect rng in
    let expected = brute_force entries q in
    List.iter
      (fun impl ->
        Alcotest.(check (list int))
          (impl.impl_name ^ " agrees with oracle")
          expected (impl.impl_query q))
      impls
  done

(* Audit wrapper mirroring [check_structure]. *)
let check_audit ?check_leaks ?reachable tree =
  let report = Prt_rtree.Audit.check ?check_leaks ?reachable tree in
  if not (Prt_rtree.Audit.ok report) then
    Alcotest.failf "audit failed: %s" (Format.asprintf "%a" Prt_rtree.Audit.pp_report report);
  report

(* --- seeded scenarios: every qcheck failure prints a one-line repro ---

   A [scenario] is the (seed, size) pair a property derives all of its
   randomness from.  The printer emits a `PRT_QCHECK_SEED=...` repro
   line; setting that variable forces every generated scenario onto the
   failing seed, so the case replays deterministically under plain
   `dune runtest`.  Shrinking reduces only [size] (the seed is held
   fixed), keeping shrunk counterexamples reproducible by that same
   line. *)

type scenario = { sc_seed : int; sc_size : int }

let forced_seed = Option.bind (Sys.getenv_opt "PRT_QCHECK_SEED") int_of_string_opt

let scenario_repro sc =
  Printf.sprintf "seed=%d size=%d (repro: PRT_QCHECK_SEED=%d dune runtest)" sc.sc_seed sc.sc_size
    sc.sc_seed

let gen_seed =
  match forced_seed with
  | Some s -> QCheck.Gen.return s
  | None -> QCheck.Gen.int_range 0 1_000_000

let arbitrary_scenario ?(min_size = 0) ~max_size () =
  QCheck.make ~print:scenario_repro
    ~shrink:(fun sc yield ->
      QCheck.Shrink.int sc.sc_size (fun s -> if s >= min_size then yield { sc with sc_size = s }))
    QCheck.Gen.(
      int_range min_size max_size >>= fun size ->
      gen_seed >>= fun seed -> return { sc_seed = seed; sc_size = size })

(* QCheck generator for an entry array of the given max size (the seed
   honours PRT_QCHECK_SEED like every scenario). *)
let arbitrary_entries max_n =
  QCheck.make
    ~print:(fun arr -> Printf.sprintf "<%d entries>" (Array.length arr))
    QCheck.Gen.(
      int_range 0 max_n >>= fun n ->
      gen_seed >>= fun seed -> return (random_entries ~n ~seed))
