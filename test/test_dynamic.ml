(* Dynamic update tests: split algorithm contracts, insertion from
   empty, deletion down to empty, and long random insert/delete/query
   interleavings checked against a model — for each split algorithm. *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Rng = Prt_util.Rng
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Split = Prt_rtree.Split
module Dynamic = Prt_rtree.Dynamic
module Bulk_hilbert = Prt_rtree.Bulk_hilbert

let algorithms = [ Split.Linear; Split.Quadratic; Split.Rstar ]

let config alg = { Dynamic.default_config with Dynamic.split_algorithm = alg }

(* --- Split contracts --- *)

let prop_split_contract alg =
  QCheck.Test.make
    ~name:(Printf.sprintf "split %s: partition with min fill" (Split.algorithm_name alg))
    ~count:150
    (QCheck.pair (Helpers.arbitrary_entries 40) QCheck.(int_range 1 10))
    (fun (entries, min_fill) ->
      QCheck.assume (Array.length entries >= 2);
      let g1, g2 = Split.split alg ~min_fill entries in
      let effective = max 1 (min min_fill (Array.length entries / 2)) in
      let ids arr = List.sort Int.compare (Array.to_list (Array.map Entry.id arr)) in
      (* Both non-empty, respect min fill, and together exactly the input. *)
      Array.length g1 >= effective
      && Array.length g2 >= effective
      && ids (Array.append g1 g2) = ids entries)

let test_split_two_entries () =
  List.iter
    (fun alg ->
      let entries = Helpers.random_entries ~n:2 ~seed:1 in
      let g1, g2 = Split.split alg ~min_fill:1 entries in
      Alcotest.(check int) "1+1" 2 (Array.length g1 + Array.length g2);
      Alcotest.(check bool) "both non-empty" true (Array.length g1 = 1 && Array.length g2 = 1))
    algorithms

let test_split_rejects_singleton () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Split.split Split.Quadratic ~min_fill:1 (Helpers.random_entries ~n:1 ~seed:1));
       false
     with Invalid_argument _ -> true)

(* --- Insertion --- *)

let test_insert_from_empty alg () =
  let pool = Helpers.small_pool () in
  let tree = Rtree.create_empty pool in
  let entries = Helpers.random_entries ~n:300 ~seed:42 in
  Array.iteri
    (fun i e ->
      Dynamic.insert ~config:(config alg) tree e;
      if (i + 1) mod 50 = 0 then ignore (Helpers.check_structure tree))
    entries;
  Alcotest.(check int) "count" 300 (Rtree.count tree);
  ignore (Helpers.check_structure tree);
  Helpers.check_tree_queries ~seed:7 tree entries

let test_insert_into_bulk_loaded alg () =
  let pool = Helpers.small_pool () in
  let base = Helpers.random_entries ~n:200 ~seed:5 in
  let tree = Bulk_hilbert.load_h pool base in
  let extra = Array.map (fun e -> Entry.make (Entry.rect e) (Entry.id e + 200))
      (Helpers.random_entries ~n:100 ~seed:6)
  in
  Array.iter (Dynamic.insert ~config:(config alg) tree) extra;
  ignore (Helpers.check_structure tree);
  Helpers.check_tree_queries ~seed:8 tree (Array.append base extra)

let test_insert_duplicates alg () =
  (* Inserting the same rectangle many times must split fine. *)
  let pool = Helpers.small_pool () in
  let tree = Rtree.create_empty pool in
  let r = Rect.make ~xmin:0.2 ~ymin:0.2 ~xmax:0.3 ~ymax:0.3 in
  let entries = Array.init 100 (fun i -> Entry.make r i) in
  Array.iter (Dynamic.insert ~config:(config alg) tree) entries;
  ignore (Helpers.check_structure tree);
  Helpers.check_query_matches_brute_force tree entries r

(* --- Deletion --- *)

let test_delete_missing () =
  let pool = Helpers.small_pool () in
  let tree = Bulk_hilbert.load_h pool (Helpers.random_entries ~n:50 ~seed:3) in
  let ghost = Entry.make (Rect.point 0.123 0.456) 9999 in
  Alcotest.(check bool) "returns false" false (Dynamic.delete tree ghost);
  Alcotest.(check int) "count unchanged" 50 (Rtree.count tree)

let test_delete_all alg () =
  let pool = Helpers.small_pool () in
  let entries = Helpers.random_entries ~n:250 ~seed:13 in
  let tree = Bulk_hilbert.load_h pool entries in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) "deleted" true (Dynamic.delete ~config:(config alg) tree e);
      if (i + 1) mod 50 = 0 then ignore (Helpers.check_structure tree))
    entries;
  Alcotest.(check int) "empty" 0 (Rtree.count tree);
  Alcotest.(check int) "height collapsed" 1 (Rtree.height tree);
  ignore (Helpers.check_structure tree)

let test_delete_half_then_query alg () =
  let pool = Helpers.small_pool () in
  let entries = Helpers.random_entries ~n:300 ~seed:23 in
  let tree = Bulk_hilbert.load_h pool entries in
  let keep = ref [] in
  Array.iteri
    (fun i e ->
      if i mod 2 = 0 then Alcotest.(check bool) "deleted" true (Dynamic.delete ~config:(config alg) tree e)
      else keep := e :: !keep)
    entries;
  ignore (Helpers.check_structure tree);
  Helpers.check_tree_queries ~seed:99 tree (Array.of_list !keep)

let test_delete_then_space_reused () =
  (* Pages of dissolved nodes must return to the free list: rebuilding
     the same content must not grow the page count unboundedly. *)
  let pool = Helpers.small_pool () in
  let pager = Prt_storage.Buffer_pool.pager pool in
  let entries = Helpers.random_entries ~n:200 ~seed:31 in
  let tree = Rtree.create_empty pool in
  Array.iter (Dynamic.insert tree) entries;
  let pages_after_first = Pager.num_pages pager in
  for _ = 1 to 3 do
    Array.iter (fun e -> ignore (Dynamic.delete tree e)) entries;
    Array.iter (Dynamic.insert tree) entries
  done;
  let growth = Pager.num_pages pager - pages_after_first in
  Alcotest.(check bool) (Printf.sprintf "page growth %d bounded" growth) true
    (growth < pages_after_first)

(* --- Random mixed workload vs model --- *)

let test_mixed_model alg () =
  let pool = Helpers.small_pool () in
  let tree = Rtree.create_empty pool in
  let rng = Rng.create 555 in
  let model : (int, Entry.t) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  for step = 1 to 800 do
    let p = Rng.float rng 1.0 in
    if p < 0.55 || Hashtbl.length model = 0 then begin
      let e = Entry.make (Helpers.random_rect rng) !next_id in
      incr next_id;
      Hashtbl.replace model (Entry.id e) e;
      Dynamic.insert ~config:(config alg) tree e
    end
    else if p < 0.8 then begin
      (* Delete a random present entry. *)
      let ids = Hashtbl.fold (fun id _ acc -> id :: acc) model [] in
      let id = List.nth ids (Rng.int rng (List.length ids)) in
      let e = Hashtbl.find model id in
      Hashtbl.remove model id;
      Alcotest.(check bool) "delete succeeds" true (Dynamic.delete ~config:(config alg) tree e)
    end
    else begin
      let q = Helpers.random_rect rng in
      let expected =
        Hashtbl.fold
          (fun id e acc -> if Rect.intersects (Entry.rect e) q then id :: acc else acc)
          model []
        |> List.sort Int.compare
      in
      let result, _ = Rtree.query_list tree q in
      Alcotest.(check (list int)) "query matches model" expected (Helpers.ids_of result)
    end;
    Alcotest.(check int) "count matches model" (Hashtbl.length model) (Rtree.count tree);
    if step mod 100 = 0 then ignore (Helpers.check_structure tree)
  done;
  ignore (Helpers.check_structure tree)

let suite =
  let per_alg name f =
    List.map
      (fun alg ->
        Alcotest.test_case (Printf.sprintf "%s [%s]" name (Split.algorithm_name alg)) `Quick (f alg))
      algorithms
  in
  [
    Alcotest.test_case "split: two entries" `Quick test_split_two_entries;
    Alcotest.test_case "split: singleton raises" `Quick test_split_rejects_singleton;
    Alcotest.test_case "delete: missing entry" `Quick test_delete_missing;
    Alcotest.test_case "delete: pages reused" `Quick test_delete_then_space_reused;
  ]
  @ List.map (fun alg -> Helpers.qcheck_case (prop_split_contract alg)) algorithms
  @ per_alg "insert: from empty" test_insert_from_empty
  @ per_alg "insert: into bulk-loaded" test_insert_into_bulk_loaded
  @ per_alg "insert: duplicates" test_insert_duplicates
  @ per_alg "delete: all entries" test_delete_all
  @ per_alg "delete: half then query" test_delete_half_then_query
  @ per_alg "mixed: random ops vs model" test_mixed_model
