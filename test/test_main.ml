let () =
  Alcotest.run "prtree-repro"
    [
      ("util", Test_util.suite);
      ("parallel", Test_parallel.suite);
      ("geom", Test_geom.suite);
      ("storage", Test_storage.suite);
      ("extsort", Test_extsort.suite);
      ("hilbert", Test_hilbert.suite);
      ("rtree", Test_rtree.suite);
      ("dynamic", Test_dynamic.suite);
      ("prtree", Test_prtree.suite);
      ("ext", Test_ext.suite);
      ("logmethod", Test_logmethod.suite);
      ("ndtree", Test_ndtree.suite);
      ("ndtree-dynamic", Test_ndtree_dynamic.suite);
      ("metrics", Test_metrics.suite);
      ("kdbtree", Test_kdbtree.suite);
      ("hilbert-rtree", Test_hilbert_rtree.suite);
      ("features", Test_features.suite);
      ("robustness", Test_robustness.suite);
      ("adversarial", Test_adversarial.suite);
      ("differential", Test_differential.suite);
      ("faults", Test_faults.suite);
      ("crash", Test_crash.suite);
      ("audit", Test_audit.suite);
      ("obs", Test_obs.suite);
      ("obs-domains", Test_obs_domains.suite);
      ("paper-scale", Test_paper_scale.suite);
      ("workloads", Test_workloads.suite);
      ("qexec", Test_qexec.suite);
      ("resilience", Test_resilience.suite);
      ("mvcc", Test_mvcc.suite);
      ("mmap", Test_mmap.suite);
      ("serve", Test_serve.suite);
      ("ingest", Test_ingest.suite);
    ]
