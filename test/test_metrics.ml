(* Metrics tests: consistency with validation counts, zero overlap for
   disjoint tilings, and the PR-vs-random ordering sanity check. *)

module Rect = Prt_geom.Rect
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Metrics = Prt_rtree.Metrics

let test_counts_match_validate () =
  let entries = Helpers.random_entries ~n:500 ~seed:1 in
  let tree = Prt_prtree.Prtree.load (Helpers.small_pool ()) entries in
  let s = Rtree.validate tree in
  let m = Metrics.analyze tree in
  Alcotest.(check int) "height" (Rtree.height tree) m.Metrics.height;
  Alcotest.(check int) "levels" (Rtree.height tree) (List.length m.Metrics.levels);
  let total_nodes = List.fold_left (fun acc l -> acc + l.Metrics.nodes) 0 m.Metrics.levels in
  Alcotest.(check int) "nodes" s.Rtree.nodes total_nodes;
  let leaf = List.nth m.Metrics.levels (m.Metrics.height - 1) in
  Alcotest.(check int) "leaf nodes" s.Rtree.leaves leaf.Metrics.nodes;
  Alcotest.(check int) "leaf entries" 500 leaf.Metrics.entries

let test_disjoint_tiling_zero_overlap () =
  (* A perfect grid of disjoint tiles packed in row-major order: leaves
     are contiguous runs, so sibling overlap is 0 at the leaf level. *)
  let side = Prt_rtree.Node.capacity ~page_size:Helpers.small_page_size in
  let entries =
    Array.init (side * side) (fun i ->
        let x = float_of_int (i mod side) and y = float_of_int (i / side) in
        Entry.make (Rect.make ~xmin:x ~ymin:y ~xmax:(x +. 0.9) ~ymax:(y +. 0.9)) i)
  in
  let tree = Prt_rtree.Pack.build_from_ordered (Helpers.small_pool ()) entries in
  let m = Metrics.analyze tree in
  Alcotest.(check (float 1e-12)) "zero leaf overlap" 0.0 m.Metrics.leaf_overlap;
  Alcotest.(check bool) "dead space small" true (m.Metrics.dead_space >= 0.0)

let test_pr_tighter_than_random_order () =
  let entries = Helpers.random_entries ~n:1500 ~seed:2 in
  let random_tree = Prt_rtree.Pack.build_from_ordered (Helpers.small_pool ()) entries in
  let pr_tree = Prt_prtree.Prtree.load (Helpers.small_pool ()) entries in
  let mr = Metrics.analyze random_tree and mp = Metrics.analyze pr_tree in
  Alcotest.(check bool)
    (Printf.sprintf "PR leaf area %.1f < random %.1f" mp.Metrics.leaf_area mr.Metrics.leaf_area)
    true
    (mp.Metrics.leaf_area < mr.Metrics.leaf_area);
  Alcotest.(check bool) "PR leaf overlap smaller" true
    (mp.Metrics.leaf_overlap < mr.Metrics.leaf_overlap)

let test_pp_renders () =
  let entries = Helpers.random_entries ~n:100 ~seed:3 in
  let tree = Prt_prtree.Prtree.load (Helpers.small_pool ()) entries in
  let out = Format.asprintf "%a" Metrics.pp (Metrics.analyze tree) in
  Alcotest.(check bool) "non-empty" true (String.length out > 20)

let suite =
  [
    Alcotest.test_case "counts match validate" `Quick test_counts_match_validate;
    Alcotest.test_case "disjoint tiling has zero overlap" `Quick test_disjoint_tiling_zero_overlap;
    Alcotest.test_case "PR tighter than random packing" `Quick test_pr_tighter_than_random_order;
    Alcotest.test_case "pp renders" `Quick test_pp_renders;
  ]
