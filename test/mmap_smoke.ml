(* The mmap smoke matrix (`dune build @mmap-smoke`): the backend
   equivalence matrix plus the allocation-free-descent proof,
   standalone so CI can run it without the full suite.

     - backend matrix: one committed file per size, opened under the
       mmap and pread backends; sequential queries, executor batches
       (jobs 1, 2 and 4) and a snapshot pinned across five commits
       must all return byte-identical results under both backends and
       equal the brute-force oracle, with the mapped handle actually
       serving windows (not silently falling back to pread);
     - zero allocation: on the mmap backend, after one warm-up query
       has sized the reusable descent stack and hit buffer, a
       miss-only window query performs no minor allocation at all —
       [Gc.minor_words] across 1000 queries must not move.  This is
       the property that makes the mapped read path mechanically
       different from pread: no syscall, no lock, no copy, no decode,
       and no garbage.

   Exits non-zero on any violation, printing one line per offence. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Dynamic = Prt_rtree.Dynamic
module Index_file = Prt_rtree.Index_file
module Qexec = Prt_rtree.Qexec
module Mmap_pager = Prt_storage.Mmap_pager
module Prtree = Prt_prtree.Prtree

let violations = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr violations;
      Printf.printf "VIOLATION: %s\n%!" s)
    fmt

let page_size = 512
let everything = Rect.make ~xmin:(-1e9) ~ymin:(-1e9) ~xmax:1e9 ~ymax:1e9

let random_rect rng =
  let x0 = Rng.float rng 1.0 and y0 = Rng.float rng 1.0 in
  let w = Rng.float rng 0.2 and h = Rng.float rng 0.2 in
  Rect.make ~xmin:x0 ~ymin:y0 ~xmax:(Float.min 1.0 (x0 +. w)) ~ymax:(Float.min 1.0 (y0 +. h))

let make_entries ~n ~seed =
  let rng = Rng.create seed in
  Array.init n (fun i -> Entry.make (random_rect rng) i)

let ids_of entries = List.map Entry.id entries |> List.sort Int.compare

let brute_force entries window =
  Array.to_list entries
  |> List.filter (fun e -> Rect.intersects (Entry.rect e) window)
  |> List.map Entry.id
  |> List.sort Int.compare

let with_temp f =
  let path = Filename.temp_file "prt_mmap_smoke" ".idx" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let create_index ?backend path entries =
  Index_file.create ~page_size ?backend path ~build:(fun pool -> Prtree.load pool entries)

let backend_name : Index_file.backend -> string = function
  | `Mmap -> "mmap"
  | `Pread -> "pread"
  | `Auto -> "auto"

(* --- backend equivalence matrix --- *)

let windows rng =
  Array.init 8 (fun i -> if i = 0 then everything else random_rect rng)

let run_backend ~entries ~queries backend =
  with_temp @@ fun path ->
  let idx = create_index ~backend path entries in
  Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
  if Index_file.read_backend idx <> backend_name backend then
    fail "backend %s did not activate" (backend_name backend);
  let tree = Index_file.tree idx in
  let sequential =
    Array.map (fun w -> ids_of (fst (Rtree.query_list tree w))) queries
  in
  let batches =
    List.map
      (fun jobs ->
        let exec = Index_file.executor idx in
        Array.map (fun (r, _) -> ids_of r) (Qexec.run ~jobs exec queries))
      [ 1; 2; 4 ]
  in
  (* Pin, commit five inserts, then read both the pinned and the live
     tree: the snapshot must still answer with the pre-commit oracle. *)
  let s = Index_file.snapshot idx in
  for j = 0 to 4 do
    let x = 0.1 +. (0.08 *. float_of_int j) in
    let e =
      Entry.make
        (Rect.make ~xmin:x ~ymin:x ~xmax:(x +. 0.01) ~ymax:(x +. 0.01))
        (1_000_000 + j)
    in
    Index_file.update idx (fun tree -> Dynamic.insert tree e)
  done;
  let sv = Index_file.snapshot_view s in
  let pinned = ids_of (fst (Rtree.query_list ~snapshot:sv tree everything)) in
  let live = ids_of (fst (Rtree.query_list tree everything)) in
  Index_file.release_snapshot s;
  (match backend with
  | `Pread | `Auto -> ()
  | `Mmap -> (
      match Index_file.mmap_counters idx with
      | None -> fail "mmap backend has no counters"
      | Some c ->
          if Array.length entries > 0 && c.Mmap_pager.c_windows_served = 0 then
            fail "mmap backend served no mapped windows (n=%d)"
              (Array.length entries)));
  (sequential, batches, pinned, live)

let backend_matrix () =
  List.iter
    (fun (n, seed) ->
      let entries = make_entries ~n ~seed in
      let rng = Rng.create (seed + 1) in
      let queries = windows rng in
      let oracle = Array.map (brute_force entries) queries in
      let sm, bm, pm, lm = run_backend ~entries ~queries `Mmap in
      let sp, bp, pp, lp = run_backend ~entries ~queries `Pread in
      Array.iteri
        (fun i o ->
          if sm.(i) <> o then fail "n=%d window %d: mmap <> oracle" n i;
          if sp.(i) <> o then fail "n=%d window %d: pread <> oracle" n i)
        oracle;
      List.iteri
        (fun bi batch ->
          Array.iteri
            (fun i o ->
              if batch.(i) <> o then
                fail "n=%d batch %d window %d: mmap executor <> oracle" n bi i)
            oracle)
        bm;
      List.iteri
        (fun bi batch ->
          Array.iteri
            (fun i o ->
              if batch.(i) <> o then
                fail "n=%d batch %d window %d: pread executor <> oracle" n bi i)
            oracle)
        bp;
      let pre = brute_force entries everything in
      if pm <> pre then fail "n=%d: mmap pinned read is not the pinned tree" n;
      if pp <> pre then fail "n=%d: pread pinned read is not the pinned tree" n;
      if lm <> lp then fail "n=%d: live reads disagree across backends" n;
      Printf.printf "matrix n=%-5d ok (8 windows x {seq, jobs 1/2/4, snapshot})\n%!" n)
    [ (1, 11); (39, 12); (400, 13); (2000, 14) ]

(* --- zero allocation on the mapped miss path --- *)

let zero_allocation () =
  with_temp @@ fun path ->
  let entries = make_entries ~n:2000 ~seed:21 in
  let idx = create_index ~backend:`Mmap path entries in
  Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
  if Index_file.read_backend idx <> "mmap" then fail "mmap did not activate";
  let tree = Index_file.tree idx in
  let hits = Rtree.hits_make () in
  (* All entries live in the unit square, so this window tests the
     root's rects and matches none: the descent never materializes a
     hit and never leaves the mapping. *)
  let miss = Rect.make ~xmin:1e6 ~ymin:1e6 ~xmax:(1e6 +. 1.0) ~ymax:(1e6 +. 1.0) in
  (* Warm-up: size the reusable stack and hit buffer, verify every
     page's CRC once (the memo allocates on first visit, never
     after). *)
  Rtree.query_into tree everything ~into:hits;
  let expected = Array.length entries in
  if Rtree.hits_length hits <> expected then
    fail "warm-up query returned %d of %d" (Rtree.hits_length hits) expected;
  Rtree.query_into tree miss ~into:hits;
  if Rtree.hits_length hits <> 0 then
    fail "miss window matched %d entries" (Rtree.hits_length hits);
  let rounds = 1000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to rounds do
    Rtree.query_into tree miss ~into:hits
  done;
  let w1 = Gc.minor_words () in
  let per_query = (w1 -. w0) /. float_of_int rounds in
  if w1 -. w0 <> 0.0 then
    fail "mapped miss descent allocates %.1f minor words per query" per_query;
  if Rtree.hits_length hits <> 0 then
    fail "miss loop matched %d entries" (Rtree.hits_length hits);
  (match Index_file.mmap_counters idx with
  | None -> fail "mmap counters vanished"
  | Some c ->
      if c.Mmap_pager.c_fallbacks > 0 then
        fail "miss loop fell back to pread %d times" c.Mmap_pager.c_fallbacks);
  Printf.printf "zero-alloc: %d miss queries, %.0f minor words total\n%!" rounds
    (w1 -. w0)

let () =
  backend_matrix ();
  zero_allocation ();
  if !violations > 0 then begin
    Printf.printf "mmap smoke: %d violation(s)\n%!" !violations;
    exit 1
  end;
  Printf.printf "mmap smoke: all checks passed\n%!"
