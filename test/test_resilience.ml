(* The online-resilience layer end to end: graceful degradation of
   queries over damaged devices (results always a labelled subset of the
   truth), cooperative deadlines over the virtual clock, the shared
   retry engine's circuit breaker, admission control on the batched
   executor, and the quarantine -> scrub -> heal lifecycle on a
   shadowed index file. *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Page = Prt_storage.Page
module Buffer_pool = Prt_storage.Buffer_pool
module Failpoint = Prt_storage.Failpoint
module Retry = Prt_storage.Retry
module Quarantine = Prt_storage.Quarantine
module Scrub = Prt_storage.Scrub
module Deadline = Prt_util.Deadline
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Qexec = Prt_rtree.Qexec
module Index_file = Prt_rtree.Index_file
module Prtree = Prt_prtree.Prtree

let unit_square = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0

(* Build a tree on a clean in-memory pager, then view the same device
   through a fault-injecting wrapper and a single-attempt pool: every
   injected fault surfaces to the resilient query path instead of being
   absorbed by retries. *)
let degraded_view ~seed ~rate ~n =
  let entries = Helpers.random_entries ~n ~seed in
  let base = Pager.create_memory ~page_size:Helpers.small_page_size () in
  let build_pool = Buffer_pool.create ~capacity:4096 base in
  let tree = Prtree.load build_pool entries in
  Buffer_pool.flush build_pool;
  let faulty = Pager.wrap_faulty base (Helpers.fault_schedule ~seed:(seed + 1) ~rate ()) in
  let qpool =
    Buffer_pool.create ~capacity:4096 ~retry:{ Buffer_pool.attempts = 1; backoff_base = 1 } faulty
  in
  let qtree =
    Rtree.of_root ~pool:qpool ~root:(Rtree.root tree) ~height:(Rtree.height tree)
      ~count:(Rtree.count tree)
  in
  (entries, qtree)

(* --- graceful degradation: subset of the oracle, partiality labelled --- *)

let test_degraded_subset_qcheck =
  QCheck.Test.make ~count:60 ~name:"degraded query: labelled subset of oracle"
    (Helpers.arbitrary_scenario ~min_size:20 ~max_size:150 ())
    (fun sc ->
      let n = sc.Helpers.sc_size and seed = sc.Helpers.sc_seed in
      let entries, qtree = degraded_view ~seed ~rate:0.3 ~n in
      let quarantine = Quarantine.create () in
      let queries = Helpers.random_queries ~n:15 ~seed:(seed + 1000) in
      Array.for_all
        (fun w ->
          let hits, stats = Rtree.query_list ~quarantine qtree w in
          let ids = Helpers.ids_of hits in
          let oracle = Helpers.brute_force entries w in
          let subset = List.for_all (fun id -> List.mem id oracle) ids in
          match Rtree.completeness stats with
          | Rtree.Complete -> subset && ids = oracle
          | Rtree.Partial { skipped_pages; skipped_subtrees } ->
              subset && skipped_pages <> [] && skipped_subtrees > 0
          | Rtree.Timed_out _ -> false (* no deadline was set *))
        queries)

let test_quarantined_pages_skipped () =
  let entries, qtree = degraded_view ~seed:7 ~rate:0.4 ~n:120 in
  let quarantine = Quarantine.create () in
  let _ = Rtree.query_list ~quarantine qtree unit_square in
  let poisoned = Quarantine.count quarantine in
  if poisoned > 0 then begin
    (* A second pass must route around the registry without touching the
       device for those ids — and stay a subset of the truth. *)
    let hits, stats = Rtree.query_list ~quarantine qtree unit_square in
    let oracle = Helpers.brute_force entries unit_square in
    List.iter
      (fun id -> Alcotest.(check bool) "subset" true (List.mem id oracle))
      (Helpers.ids_of hits);
    Alcotest.(check bool) "partiality labelled" false (Rtree.complete stats)
  end

let test_fail_stop_without_quarantine () =
  (* The historical contract is untouched: no quarantine, no deadline —
     device damage raises. *)
  let _, qtree = degraded_view ~seed:3 ~rate:0.9 ~n:150 in
  match Rtree.query_count qtree unit_square with
  | _ -> Alcotest.fail "expected Io_error from the fail-stop path"
  | exception Pager.Io_error _ -> ()

(* --- deadlines: virtual clock, slow I/O, monotone coverage --- *)

let with_virtual_clock f =
  Deadline.install_virtual ~at:0.0 ();
  Fun.protect ~finally:Deadline.uninstall_virtual f

let test_deadline_basics () =
  Alcotest.(check bool) "none never expires" false (Deadline.expired Deadline.none);
  Alcotest.check_raises "negative budget" (Invalid_argument "Deadline.after_ms: negative budget")
    (fun () -> ignore (Deadline.after_ms (-1.0)));
  with_virtual_clock (fun () ->
      let d = Deadline.after_ms 10.0 in
      Alcotest.(check bool) "not yet" false (Deadline.expired d);
      Deadline.advance_ms 5.0;
      Alcotest.(check bool) "still not" false (Deadline.expired d);
      Deadline.advance_ms 6.0;
      Alcotest.(check bool) "expired" true (Deadline.expired d))

let test_slow_io_consumes_budget () =
  (* Failpoint read delays advance the virtual clock, so simulated slow
     I/O really eats the deadline. *)
  with_virtual_clock (fun () ->
      let pager =
        Pager.wrap_faulty
          (Pager.create_memory ~page_size:Helpers.small_page_size ())
          (Failpoint.create (Failpoint.slow ~read_ms:2.5 ()))
      in
      let id = Pager.alloc pager in
      Pager.write pager id (Page.create Helpers.small_page_size);
      let before = Deadline.remaining_ms (Deadline.after_ms 100.0) in
      ignore (Pager.read pager id);
      let after = Deadline.remaining_ms (Deadline.after_ms 100.0) in
      ignore (before, after);
      let d = Deadline.after_ms 2.0 in
      ignore (Pager.read pager id);
      Alcotest.(check bool) "2.5ms read expired a 2ms budget" true (Deadline.expired d))

let test_deadline_monotone_coverage () =
  let entries = Helpers.random_entries ~n:200 ~seed:11 in
  let base = Pager.create_memory ~page_size:Helpers.small_page_size () in
  let build_pool = Buffer_pool.create ~capacity:4096 base in
  let tree = Prtree.load build_pool entries in
  Buffer_pool.flush build_pool;
  let slow = Pager.wrap_faulty base (Failpoint.create (Failpoint.slow ~read_ms:1.0 ())) in
  let oracle = Helpers.brute_force entries unit_square in
  let run budget_ms =
    (* Fresh pool per run: every page read costs 1 virtual ms. *)
    let qpool = Buffer_pool.create ~capacity:4096 slow in
    let qtree =
      Rtree.of_root ~pool:qpool ~root:(Rtree.root tree) ~height:(Rtree.height tree)
        ~count:(Rtree.count tree)
    in
    with_virtual_clock (fun () ->
        let hits, stats = Rtree.query_list ~deadline:(Deadline.after_ms budget_ms) qtree unit_square in
        (Helpers.ids_of hits, stats))
  in
  let budgets = [ 0.5; 3.0; 12.0; 1000.0 ] in
  let results = List.map run budgets in
  (* Coverage is monotone in the budget, every cutoff is labelled, and
     the full budget returns exactly the oracle. *)
  let rec pairs = function
    | (ids1, _) :: ((ids2, _) :: _ as rest) ->
        Alcotest.(check bool) "monotone subset" true
          (List.for_all (fun id -> List.mem id ids2) ids1);
        pairs rest
    | _ -> ()
  in
  pairs results;
  List.iter
    (fun (ids, stats) ->
      if Rtree.complete stats then Alcotest.(check (list int)) "complete = oracle" oracle ids
      else
        match Rtree.completeness stats with
        | Rtree.Timed_out _ -> ()
        | c -> Alcotest.failf "expected Timed_out, got %a" Rtree.pp_completeness c)
    results;
  let last_ids, last_stats = List.nth results (List.length budgets - 1) in
  Alcotest.(check bool) "generous budget completes" true (Rtree.complete last_stats);
  Alcotest.(check (list int)) "oracle" oracle last_ids;
  let first_ids, first_stats = List.hd results in
  Alcotest.(check bool) "starved budget times out" false (Rtree.complete first_stats);
  Alcotest.(check bool) "starved < full" true (List.length first_ids < List.length last_ids)

(* --- the retry engine's circuit breaker --- *)

let breaker_policy =
  { Retry.default_policy with attempts = 1; jitter = 0.0; breaker_threshold = 3; breaker_cooldown = 2 }

let failing_op calls () =
  incr calls;
  raise (Pager.Io_error "down")

let test_breaker_trips_and_recovers () =
  let eng = Retry.create ~policy:breaker_policy () in
  let calls = ref 0 in
  let attempt f = match Retry.run eng ~op:"t" f with _ -> () | exception Pager.Io_error _ -> () in
  Alcotest.(check bool) "starts closed" true (Retry.breaker_state eng = `Closed);
  (* Three consecutive exhausted operations trip it. *)
  for _ = 1 to 3 do attempt (failing_op calls) done;
  Alcotest.(check bool) "open after threshold" true (Retry.breaker_state eng = `Open);
  Alcotest.(check int) "one trip" 1 (Retry.stats eng).Retry.trips;
  (* While open it fails fast: the operation body never runs. *)
  let before = !calls in
  attempt (failing_op calls);
  attempt (failing_op calls);
  Alcotest.(check int) "rejected without executing" before !calls;
  Alcotest.(check int) "rejections counted" 2 (Retry.stats eng).Retry.rejected;
  (* Cooldown served: the next call is a half-open probe; success closes. *)
  (match Retry.run eng ~op:"t" (fun () -> 42) with
  | v -> Alcotest.(check int) "probe result" 42 v
  | exception Pager.Io_error _ -> Alcotest.fail "probe should have run");
  Alcotest.(check bool) "closed after good probe" true (Retry.breaker_state eng = `Closed)

let test_breaker_failed_probe_reopens () =
  let eng = Retry.create ~policy:breaker_policy () in
  let calls = ref 0 in
  let attempt f = match Retry.run eng ~op:"t" f with _ -> () | exception Pager.Io_error _ -> () in
  for _ = 1 to 3 do attempt (failing_op calls) done;
  attempt (failing_op calls);
  attempt (failing_op calls);
  (* cooldown spent *)
  attempt (failing_op calls);
  (* the probe — it fails *)
  Alcotest.(check bool) "reopened" true (Retry.breaker_state eng = `Open);
  Alcotest.(check int) "second trip" 2 (Retry.stats eng).Retry.trips

let test_corrupt_page_never_retried () =
  let eng = Retry.create ~policy:{ Retry.default_policy with attempts = 5 } () in
  let calls = ref 0 in
  (match
     Retry.run eng ~op:"t" (fun () ->
         incr calls;
         raise (Pager.Corrupt_page "platter"))
   with
  | _ -> Alcotest.fail "Corrupt_page must propagate"
  | exception Pager.Corrupt_page _ -> ());
  Alcotest.(check int) "exactly one attempt" 1 !calls;
  Alcotest.(check int) "not counted as transient fault" 0 (Retry.stats eng).Retry.faults;
  Alcotest.(check bool) "breaker untouched" true (Retry.breaker_state eng = `Closed)

let test_default_policy_breaker_disabled () =
  let eng = Retry.create () in
  let attempt () =
    match Retry.run eng ~op:"t" (fun () -> raise (Pager.Io_error "x")) with
    | _ -> ()
    | exception Pager.Io_error _ -> ()
  in
  for _ = 1 to 50 do attempt () done;
  Alcotest.(check bool) "never trips by default" true (Retry.breaker_state eng = `Closed);
  Alcotest.(check int) "no trips" 0 (Retry.stats eng).Retry.trips

(* --- quarantine registry --- *)

let test_quarantine_registry () =
  let q = Quarantine.create () in
  Quarantine.add q 5 Quarantine.Corrupt;
  Quarantine.add q 5 Quarantine.Io_failed;
  (* idempotent *)
  Alcotest.(check int) "one entry" 1 (Quarantine.count q);
  Alcotest.(check int) "added once" 1 (Quarantine.added_total q);
  Alcotest.(check bool) "mem" true (Quarantine.mem q 5);
  Quarantine.add q 9 Quarantine.Io_failed;
  Quarantine.remove q 5;
  Alcotest.(check bool) "removed" false (Quarantine.mem q 5);
  Alcotest.(check int) "added_total survives removal" 2 (Quarantine.added_total q);
  Quarantine.clear q;
  Alcotest.(check int) "cleared" 0 (Quarantine.count q)

(* --- the full lifecycle on a shadowed index file --- *)

let corrupt_page_on_disk path ~page_size id =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd ((id * page_size) + 64) Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.make 16 '\171') 0 16))

let with_temp_index f =
  let path = Filename.temp_file "prt_resilience" ".idx" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let leaf_pages idx =
  let tree = Index_file.tree idx in
  let height = Rtree.height tree in
  let acc = ref [] in
  Rtree.iter_nodes tree ~f:(fun ~depth ~id _ -> if depth = height then acc := id :: !acc);
  List.rev !acc

let test_corrupt_degrade_scrub_heal () =
  with_temp_index (fun path ->
      let entries = Helpers.random_entries ~n:400 ~seed:21 in
      let oracle = Helpers.brute_force entries unit_square in
      let idx = Index_file.create ~shadow:true path ~build:(fun pool -> Prtree.load pool entries) in
      Alcotest.(check bool) "shadowed" true (Index_file.shadowed idx);
      Alcotest.(check bool) "chain written" true (Index_file.shadow_pages idx <> []);
      let victims =
        match leaf_pages idx with a :: b :: _ -> [ a; b ] | l -> l
      in
      let page_size = Pager.page_size (Index_file.pager idx) in
      Index_file.close idx;
      List.iter (fun id -> corrupt_page_on_disk path ~page_size id) victims;
      (* 1. serve degraded: the damage costs coverage, never a raise. *)
      let idx = Index_file.open_ path in
      Alcotest.(check bool) "sticky shadow" true (Index_file.shadowed idx);
      let q = Index_file.quarantine idx in
      let hits, stats = Rtree.query_list ~quarantine:q (Index_file.tree idx) unit_square in
      Alcotest.(check bool) "degraded is partial" false (Rtree.complete stats);
      List.iter
        (fun id -> Alcotest.(check bool) "degraded subset" true (List.mem id oracle))
        (Helpers.ids_of hits);
      Alcotest.(check int) "victims quarantined" (List.length victims) (Quarantine.count q);
      (* 2. the online scrub heals every victim from the shadow chain. *)
      let healed = ref 0 and wrapped = ref false in
      while not !wrapped do
        let r = Index_file.scrub_online ~pages:16 idx in
        healed := !healed + r.Scrub.on_healed;
        wrapped := r.Scrub.on_wrapped || r.Scrub.on_scanned = 0
      done;
      Alcotest.(check int) "all victims healed" (List.length victims) !healed;
      Alcotest.(check int) "quarantine drained" 0 (Quarantine.count q);
      (* 3. the same query is whole again. *)
      let hits, stats = Rtree.query_list ~quarantine:q (Index_file.tree idx) unit_square in
      Alcotest.(check bool) "complete after heal" true (Rtree.complete stats);
      Alcotest.(check (list int)) "oracle restored" oracle (Helpers.ids_of hits);
      Index_file.close idx;
      (* 4. and the file is clean on disk. *)
      let report = Index_file.fsck path in
      Alcotest.(check bool) "fsck clean after heal" true (Index_file.fsck_clean report))

let test_scrub_without_shadow_quarantines () =
  with_temp_index (fun path ->
      let entries = Helpers.random_entries ~n:300 ~seed:23 in
      let idx = Index_file.create path ~build:(fun pool -> Prtree.load pool entries) in
      Alcotest.(check bool) "not shadowed" false (Index_file.shadowed idx);
      let victim = List.hd (leaf_pages idx) in
      let page_size = Pager.page_size (Index_file.pager idx) in
      Index_file.close idx;
      corrupt_page_on_disk path ~page_size victim;
      let idx = Index_file.open_ path in
      let wrapped = ref false and quarantined = ref 0 and healed = ref 0 in
      while not !wrapped do
        let r = Index_file.scrub_online ~pages:16 idx in
        quarantined := !quarantined + r.Scrub.on_quarantined;
        healed := !healed + r.Scrub.on_healed;
        wrapped := r.Scrub.on_wrapped || r.Scrub.on_scanned = 0
      done;
      (* No repair image: detect and quarantine, do not invent data. *)
      Alcotest.(check int) "quarantined" 1 !quarantined;
      Alcotest.(check int) "nothing healed" 0 !healed;
      Alcotest.(check bool) "registered" true (Quarantine.mem (Index_file.quarantine idx) victim);
      let _, stats =
        Rtree.query_list ~quarantine:(Index_file.quarantine idx) (Index_file.tree idx) unit_square
      in
      Alcotest.(check bool) "queries degrade around it" false (Rtree.complete stats);
      Index_file.close idx)

let test_legacy_meta_still_decodes () =
  (* Files written before the shadow extension carry a 16-byte blob. *)
  let pool = Helpers.small_pool () in
  let tree = Prtree.load pool (Helpers.random_entries ~n:50 ~seed:5) in
  let legacy = Bytes.sub (Index_file.encode_meta tree) 0 16 in
  let reopened = Index_file.decode_meta pool legacy in
  Alcotest.(check int) "root" (Rtree.root tree) (Rtree.root reopened);
  Alcotest.(check int) "count" (Rtree.count tree) (Rtree.count reopened)

(* --- the batched executor: poisoned pages and admission control --- *)

let test_qexec_poisoned_batch () =
  with_temp_index (fun path ->
      let entries = Helpers.random_entries ~n:400 ~seed:31 in
      let oracle = Helpers.brute_force entries unit_square in
      let idx = Index_file.create path ~build:(fun pool -> Prtree.load pool entries) in
      let victim = List.hd (leaf_pages idx) in
      let page_size = Pager.page_size (Index_file.pager idx) in
      Index_file.close idx;
      corrupt_page_on_disk path ~page_size victim;
      let idx = Index_file.open_ path in
      let exec = Index_file.executor idx in
      let windows = Array.make 12 unit_square in
      (* A poisoned page degrades its slots; the batch never raises. *)
      let results = Qexec.run ~jobs:3 exec windows in
      Array.iter
        (fun (hits, stats) ->
          Alcotest.(check bool) "slot degraded, not failed" false (Rtree.complete stats);
          List.iter
            (fun id -> Alcotest.(check bool) "slot subset" true (List.mem id oracle))
            (Helpers.ids_of hits))
        results;
      Alcotest.(check bool) "victim in shared quarantine" true
        (Quarantine.mem (Index_file.quarantine idx) victim);
      (* Expired batch deadline: every slot labelled, still no raise. *)
      let results = Qexec.run ~jobs:2 ~deadline:(Deadline.at 0.0) exec windows in
      Array.iter
        (fun (hits, stats) ->
          Alcotest.(check bool) "timed out" true stats.Rtree.timed_out;
          Alcotest.(check (list int)) "no partial garbage" [] (Helpers.ids_of hits))
        results;
      Index_file.close idx)

let test_qexec_admission_control () =
  let pool = Helpers.small_pool () in
  let tree = Prtree.load pool (Helpers.random_entries ~n:100 ~seed:41) in
  let exec = Qexec.create ~max_in_flight:4 tree in
  (match Qexec.run ~jobs:1 exec (Array.make 5 unit_square) with
  | _ -> Alcotest.fail "expected Overloaded"
  | exception Qexec.Overloaded { in_flight; limit } ->
      Alcotest.(check int) "limit reported" 4 limit;
      Alcotest.(check int) "load reported" 0 in_flight);
  (* The rejected batch released its slots: an admissible batch runs,
     repeatedly. *)
  for _ = 1 to 3 do
    let results = Qexec.run ~jobs:1 exec (Array.make 4 unit_square) in
    Alcotest.(check int) "batch ran" 4 (Array.length results)
  done;
  Alcotest.check_raises "max_in_flight < 1 rejected"
    (Invalid_argument "Qexec.create: max_in_flight must be >= 1") (fun () ->
      ignore (Qexec.create ~max_in_flight:0 tree))

let suite =
  [
    Alcotest.test_case "quarantined pages are skipped" `Quick test_quarantined_pages_skipped;
    Alcotest.test_case "fail-stop without quarantine" `Quick test_fail_stop_without_quarantine;
    Alcotest.test_case "deadline basics on the virtual clock" `Quick test_deadline_basics;
    Alcotest.test_case "slow I/O consumes deadline budget" `Quick test_slow_io_consumes_budget;
    Alcotest.test_case "deadline coverage is monotone" `Quick test_deadline_monotone_coverage;
    Alcotest.test_case "breaker trips and recovers" `Quick test_breaker_trips_and_recovers;
    Alcotest.test_case "failed probe reopens the breaker" `Quick test_breaker_failed_probe_reopens;
    Alcotest.test_case "Corrupt_page is never retried" `Quick test_corrupt_page_never_retried;
    Alcotest.test_case "default policy never trips" `Quick test_default_policy_breaker_disabled;
    Alcotest.test_case "quarantine registry" `Quick test_quarantine_registry;
    Alcotest.test_case "corrupt -> degrade -> scrub -> heal" `Quick test_corrupt_degrade_scrub_heal;
    Alcotest.test_case "scrub without shadow quarantines" `Quick
      test_scrub_without_shadow_quarantines;
    Alcotest.test_case "legacy 16-byte metadata decodes" `Quick test_legacy_meta_still_decodes;
    Alcotest.test_case "poisoned page never fails a batch" `Quick test_qexec_poisoned_batch;
    Alcotest.test_case "admission control sheds load" `Quick test_qexec_admission_control;
    Helpers.qcheck_case test_degraded_subset_qcheck;
  ]
