(* The MVCC smoke matrix (`dune build @mvcc-smoke`): a short
   linearizability run plus the crash matrix's concurrent-reader
   column, standalone so CI can run it without the full suite.

     - linearizability: reader domains (1, 2 and 4 of them) pin
       generation snapshots and query while the main domain commits a
       stream of inserts and runs executor batches between commits;
       every observation must equal the oracle of exactly one
       committed generation — pre- or post-commit, never a mix;
     - crash column: at every kill point of an insert and of a delete,
       a reader pins and descends at the crashing write (via the
       physical-write hook); the snapshot must be whole, fsck clean,
       and the reopened file exactly pre-op or post-op;
     - reclamation: after the pins drop, one more commit must leave no
       retained versions and no parked frees.

   Exits non-zero on any violation, printing one line per offence. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Pager = Prt_storage.Pager
module Failpoint = Prt_storage.Failpoint
module Superblock = Prt_storage.Superblock
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Dynamic = Prt_rtree.Dynamic
module Index_file = Prt_rtree.Index_file
module Qexec = Prt_rtree.Qexec
module Prtree = Prt_prtree.Prtree

let violations = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr violations;
      Printf.printf "VIOLATION: %s\n%!" s)
    fmt

let page_size = 512
let everything = Rect.make ~xmin:(-1e9) ~ymin:(-1e9) ~xmax:1e9 ~ymax:1e9

let random_rect rng =
  let x0 = Rng.float rng 1.0 and y0 = Rng.float rng 1.0 in
  let w = Rng.float rng 0.2 and h = Rng.float rng 0.2 in
  Rect.make ~xmin:x0 ~ymin:y0 ~xmax:(Float.min 1.0 (x0 +. w)) ~ymax:(Float.min 1.0 (y0 +. h))

let make_entries ~n ~seed =
  let rng = Rng.create seed in
  Array.init n (fun i -> Entry.make (random_rect rng) i)

let extra_entry j =
  let x = 0.05 +. (0.9 *. float_of_int (j mod 10) /. 10.0) in
  Entry.make (Rect.make ~xmin:x ~ymin:x ~xmax:(x +. 0.01) ~ymax:(x +. 0.01)) (1_000_000 + j)

let oracle entries =
  Array.to_list entries
  |> List.filter (fun e -> Rect.intersects (Entry.rect e) everything)
  |> List.map Entry.id
  |> List.sort Int.compare

let ids_of hits = List.sort Int.compare (List.map Entry.id hits)

let snapshot_ids idx sv =
  ids_of (fst (Rtree.query_list ~snapshot:sv (Index_file.tree idx) everything))

let with_temp f =
  let path = Filename.temp_file "prt_mvcc_smoke" ".idx" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let copy_file src dst =
  let ic = open_in_bin src in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc data;
  close_out oc

(* --- short linearizability run --- *)

let linearizability_round ~readers ~seed =
  with_temp @@ fun path ->
  let entries = make_entries ~n:150 ~seed in
  let idx = Index_file.create ~page_size path ~build:(fun pool -> Prtree.load pool entries) in
  Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
  let sb = Index_file.superblock idx in
  let gen0 = Superblock.generation sb in
  let updates = 8 in
  let base = oracle entries in
  let oracles =
    Array.init (updates + 1) (fun j ->
        let extras = List.init j (fun i -> 1_000_000 + i) in
        (gen0 + (2 * j), List.sort Int.compare (extras @ base)))
  in
  let exec = Index_file.executor idx in
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let observed = Atomic.make 0 in
  let check gen got =
    match Array.find_opt (fun (g, _) -> g = gen) oracles with
    | Some (_, expect) when got = expect -> Atomic.incr observed
    | _ -> Atomic.incr torn
  in
  let reader () =
    while not (Atomic.get stop) do
      Index_file.with_snapshot idx (fun sv -> check sv.Rtree.sv_gen (snapshot_ids idx sv))
    done
  in
  let domains = List.init readers (fun _ -> Domain.spawn reader) in
  for j = 1 to updates do
    Index_file.update idx (fun tree -> Dynamic.insert tree (extra_entry (j - 1)));
    let results = Qexec.run ~jobs:readers exec [| everything |] in
    check (Superblock.generation sb) (ids_of (fst results.(0)))
  done;
  Atomic.set stop true;
  List.iter Domain.join domains;
  if Atomic.get torn > 0 then
    fail "linearizability(readers=%d seed=%d): %d torn reads over %d observations" readers seed
      (Atomic.get torn)
      (Atomic.get observed + Atomic.get torn);
  Index_file.update idx (fun tree -> Dynamic.insert tree (extra_entry updates));
  let st = Pager.mvcc_stats (Index_file.pager idx) in
  if st.Pager.live_versions <> 0 || st.Pager.parked_pages <> 0 then
    fail "reclamation(readers=%d seed=%d): %d versions, %d parked pages left" readers seed
      st.Pager.live_versions st.Pager.parked_pages;
  Atomic.get observed

(* --- crash matrix: concurrent-reader-during-commit column --- *)

let crash_column ~name ~mutate ~pre ~post pristine =
  with_temp @@ fun work ->
  let k = ref 0 and finished = ref false and probed = ref 0 in
  while not !finished do
    if !k > 2000 then begin
      fail "%s crash sweep did not terminate" name;
      finished := true
    end
    else begin
      copy_file pristine work;
      let handle = ref None in
      let hook ord =
        if ord = !k then
          match !handle with
          | None -> ()
          | Some idx ->
              Index_file.with_snapshot idx (fun sv ->
                  incr probed;
                  if snapshot_ids idx sv <> pre then
                    fail "%s k=%d: reader pinned at the crashing write saw a torn snapshot" name
                      !k)
      in
      let fp = Failpoint.create { (Failpoint.crash_after !k) with phys_write_hook = Some hook } in
      let idx = Index_file.open_ ~page_size ~crash:fp work in
      handle := Some idx;
      (match Index_file.update idx mutate with
      | _ ->
          Index_file.close idx;
          finished := true
      | exception Failpoint.Simulated_crash _ ->
          handle := None;
          let report = Index_file.fsck ~page_size work in
          if not report.Index_file.fsck_tree_ok then
            fail "%s k=%d: fsck found no sound tree after crashing under a pinned reader" name !k;
          let idx = Index_file.open_ ~page_size work in
          let got = ids_of (fst (Rtree.query_list (Index_file.tree idx) everything)) in
          Index_file.close idx;
          if got <> pre && got <> post then
            fail "%s k=%d: crash under a pinned reader reopened to a hybrid (%d ids)" name !k
              (List.length got));
      incr k
    end
  done;
  (!k, !probed)

let crash_matrix () =
  with_temp @@ fun pristine ->
  let entries = make_entries ~n:120 ~seed:913 in
  let idx = Index_file.create ~page_size pristine ~build:(fun pool -> Prtree.load pool entries) in
  Index_file.close idx;
  let pre = oracle entries in
  let fresh = extra_entry 0 in
  let post_insert = List.sort Int.compare (Entry.id fresh :: pre) in
  let ik, ip =
    crash_column ~name:"insert" ~mutate:(fun tree -> Dynamic.insert tree fresh) ~pre
      ~post:post_insert pristine
  in
  Printf.printf "insert column: %d kill points, %d pinned-reader probes\n%!" ik ip;
  (* Delete column: start from the post-insert image and remove the
     fresh entry again. *)
  with_temp @@ fun pristine2 ->
  copy_file pristine pristine2;
  let idx = Index_file.open_ ~page_size pristine2 in
  Index_file.update idx (fun tree -> Dynamic.insert tree fresh);
  Index_file.close idx;
  let dk, dp =
    crash_column ~name:"delete"
      ~mutate:(fun tree -> ignore (Dynamic.delete tree fresh))
      ~pre:post_insert ~post:pre pristine2
  in
  Printf.printf "delete column: %d kill points, %d pinned-reader probes\n%!" dk dp;
  if ip = 0 || dp = 0 then fail "crash matrix never probed a pinned reader"

let () =
  Printf.printf "== mvcc smoke: linearizability x readers, crash-matrix reader column ==\n%!";
  List.iter
    (fun readers ->
      let seen = linearizability_round ~readers ~seed:(2024 + readers) in
      Printf.printf "linearizability readers=%d: %d consistent observations\n%!" readers seen)
    [ 1; 2; 4 ];
  crash_matrix ();
  if !violations > 0 then begin
    Printf.printf "mvcc smoke: %d violation(s)\n%!" !violations;
    exit 1
  end;
  Printf.printf "mvcc smoke: all invariants held\n%!"
