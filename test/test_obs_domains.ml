(* Domain-safety of the telemetry layer: concurrent counter/histogram
   updates from N domains must aggregate to the exact sequential sum
   once the domains have joined (each domain writes a private stripe;
   exiting domains fold into the retired accumulator), the per-domain
   flight recorder must export a valid multi-track Chrome trace, a
   deterministic kill-point crash must leave an automatic dump whose
   last event is the failure, and the single-domain query path and the
   batched executor must tick identical logical-visit counters — the
   cross-mode I/O-accounting invariant. *)

module Json = Prt_obs.Json
module Metrics = Prt_obs.Metrics
module Flight = Prt_obs.Flight
module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Failpoint = Prt_storage.Failpoint
module Rtree = Prt_rtree.Rtree
module Qexec = Prt_rtree.Qexec
module Index_file = Prt_rtree.Index_file
module Prtree = Prt_prtree.Prtree

let with_collecting f =
  Metrics.set_collecting true;
  Fun.protect ~finally:(fun () -> Metrics.set_collecting false) f

(* --- concurrent counters and histograms: exact totals after join --- *)

let test_concurrent_metrics =
  let gen =
    QCheck.Gen.(
      pair (int_range 2 6) (int_range 100 2_000) >>= fun (domains, ops) ->
      return (domains, ops))
  in
  let print (d, k) = Printf.sprintf "domains=%d ops=%d" d k in
  QCheck.Test.make ~name:"N domains hammering shared metrics sum exactly" ~count:10
    (QCheck.make ~print gen) (fun (domains, ops) ->
      let c_tick = Metrics.counter "test.domains.tick" in
      let c_add = Metrics.counter "test.domains.add" in
      let h = Metrics.histogram "test.domains.hist" in
      let tick0 = Metrics.value c_tick in
      let add0 = Metrics.value c_add in
      let hcount0 = Metrics.histogram_count h in
      let hsum0 = Metrics.histogram_sum h in
      with_collecting (fun () ->
          let worker () =
            for i = 1 to ops do
              Metrics.tick c_tick;
              Metrics.add c_add 3;
              Metrics.observe h ((i mod 50) + 1)
            done
          in
          let doms = Array.init domains (fun _ -> Domain.spawn worker) in
          Array.iter Domain.join doms);
      let per_domain_hsum = ref 0 in
      for i = 1 to ops do
        per_domain_hsum := !per_domain_hsum + (i mod 50) + 1
      done;
      Metrics.value c_tick - tick0 = domains * ops
      && Metrics.value c_add - add0 = 3 * domains * ops
      && Metrics.histogram_count h - hcount0 = domains * ops
      && Metrics.histogram_sum h - hsum0 = domains * !per_domain_hsum)

(* --- percentile estimation --- *)

let test_percentiles () =
  let h = Metrics.histogram "test.domains.pctl" in
  Alcotest.(check bool) "empty histogram -> nan" true (Float.is_nan (Metrics.percentile h 50.));
  with_collecting (fun () -> for v = 1 to 100 do Metrics.observe h v done);
  let p q = Metrics.percentile h q in
  Alcotest.(check (float 0.0)) "p0 clamps to min" 1.0 (p 0.);
  Alcotest.(check (float 0.0)) "p100 clamps to max" 100.0 (p 100.);
  List.iter
    (fun (lo, hi) ->
      Alcotest.(check bool)
        (Printf.sprintf "p%g <= p%g" lo hi)
        true
        (p lo <= p hi))
    [ (0., 50.); (50., 95.); (95., 99.); (99., 100.) ];
  (* The median of 1..100 lives in the bucket holding rank 50. *)
  let m = p 50. in
  Alcotest.(check bool) "median plausible" true (m >= 30. && m <= 70.)

(* --- flight recorder: multi-domain chrome export --- *)

(* Replays the same validation as bench/check_json.ml: monotone
   timestamps, per-track span balance, "X" events with non-negative
   durations. *)
let check_chrome_doc doc =
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "no traceEvents"
  in
  let last_ts = ref neg_infinity in
  List.iter
    (fun e ->
      let ts =
        match Option.bind (Json.member "ts" e) Json.to_number with
        | Some t -> t
        | None -> Alcotest.fail "event without ts"
      in
      Alcotest.(check bool) "monotone ts" true (ts >= !last_ts);
      last_ts := ts;
      match Json.member "ph" e with
      | Some (Json.Str "X") -> (
          match Option.bind (Json.member "dur" e) Json.to_number with
          | Some d -> Alcotest.(check bool) "dur >= 0" true (d >= 0.)
          | None -> Alcotest.fail "X without dur")
      | Some (Json.Str ("B" | "E" | "i")) -> ()
      | _ -> Alcotest.fail "bad ph")
    events;
  events

let test_flight_multidomain () =
  Flight.clear ();
  let worker i () =
    Flight.begin_span "work" ~arg:i;
    Flight.point "step" ~arg:i ~note:"inner";
    Flight.end_span "work" ~arg:i
  in
  let doms = Array.init 4 (fun i -> Domain.spawn (worker i)) in
  Array.iter Domain.join doms;
  Alcotest.(check bool) "recorded something" true (Flight.total_recorded () >= 12);
  let doc = Json.of_string (Json.to_string (Flight.chrome_json ())) in
  let events = check_chrome_doc doc in
  (* Each worker's begin/end pair became one "X" complete event. *)
  let completes =
    List.filter
      (fun e ->
        Json.member "ph" e = Some (Json.Str "X")
        && Json.member "name" e = Some (Json.Str "work"))
      events
  in
  Alcotest.(check int) "one complete span per domain" 4 (List.length completes);
  let tids =
    List.sort_uniq compare
      (List.filter_map (fun e -> Option.bind (Json.member "tid" e) Json.to_int) completes)
  in
  Alcotest.(check int) "spans live on distinct tracks" 4 (List.length tids)

(* --- deterministic crash leaves an autodump, failure last --- *)

let test_crash_autodump () =
  let dump = Filename.temp_file "prt_flightrec" ".json" in
  let prev = Flight.dump_path () in
  let path = Filename.temp_file "prt_crash" ".idx" in
  Fun.protect
    ~finally:(fun () ->
      Flight.set_dump_path prev;
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ dump; path ])
    (fun () ->
      Flight.set_dump_path (Some dump);
      Flight.clear ();
      Sys.remove path;
      let entries = Helpers.random_entries ~n:200 ~seed:5 in
      let fp = Failpoint.create (Failpoint.crash_after 2) in
      (match
         Index_file.create ~page_size:Helpers.small_page_size ~crash:fp path
           ~build:(fun pool -> Prtree.load pool entries)
       with
      | idx ->
          Index_file.close idx;
          Alcotest.fail "crash budget never fired"
      | exception Failpoint.Simulated_crash _ -> ());
      (* The autodump was written at the instant of the failure and its
         chronologically last event is the failure itself. *)
      let doc = Json.of_file dump in
      let events = check_chrome_doc doc in
      Alcotest.(check bool) "dump non-empty" true (events <> []);
      let last =
        List.fold_left
          (fun best e ->
            let ts = Option.get (Option.bind (Json.member "ts" e) Json.to_number) in
            match best with Some (bts, _) when bts > ts -> best | _ -> Some (ts, e))
          None events
      in
      match last with
      | Some (_, e) ->
          Alcotest.(check (option string))
            "failing event last" (Some "failpoint.crash")
            (Option.bind (Json.member "name" e) Json.to_str)
      | None -> Alcotest.fail "no events")

(* --- cross-mode visit accounting: sequential = batched executor --- *)

let test_cross_mode_accounting () =
  let pool = Helpers.small_pool () in
  let entries = Helpers.random_entries ~n:2_000 ~seed:9 in
  let tree = Prtree.load pool entries in
  let queries = Helpers.random_queries ~n:40 ~seed:10 in
  let c_leaf = Metrics.counter "query.leaf_visits" in
  let c_internal = Metrics.counter "query.internal_visits" in
  let c_matched = Metrics.counter "query.matched" in
  let snap () = (Metrics.value c_leaf, Metrics.value c_internal, Metrics.value c_matched) in
  let delta (l0, i0, m0) (l1, i1, m1) = (l1 - l0, i1 - i0, m1 - m0) in
  with_collecting (fun () ->
      let s0 = snap () in
      let seq_matched =
        Array.fold_left (fun acc q -> acc + (Rtree.query_count tree q).Rtree.matched) 0 queries
      in
      let seq = delta s0 (snap ()) in
      let s1 = snap () in
      let results = Qexec.run ~jobs:3 (Qexec.create tree) queries in
      let par = delta s1 (snap ()) in
      let par_matched = (Qexec.total_stats results).Rtree.matched in
      Alcotest.(check int) "matched agree" seq_matched par_matched;
      Alcotest.(check (triple int int int))
        "leaf/internal/matched counters identical across modes" seq par)

let suite =
  [
    Helpers.qcheck_case test_concurrent_metrics;
    Alcotest.test_case "percentile estimation" `Quick test_percentiles;
    Alcotest.test_case "flight recorder multi-domain chrome export" `Quick
      test_flight_multidomain;
    Alcotest.test_case "kill-point crash leaves autodump, failure last" `Quick
      test_crash_autodump;
    Alcotest.test_case "sequential and qexec tick identical visit counters" `Quick
      test_cross_mode_accounting;
  ]
