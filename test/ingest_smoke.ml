(* Crash-safe ingestion smoke: `dune build @ingest-smoke`.

   Three matrices over the persistent LSM store, self-contained and
   exit-code driven for CI:

   1. The kill-point sweep — a scripted insert/delete/flush workload is
      killed at fsops/page-write kill point 0, 1, 2, ... until it
      survives.  After every simulated death the directory is reopened
      cleanly and must hold exactly the acknowledged operations (give
      or take the single in-flight one, whose WAL frame may have
      persisted before the kill), with recovery idempotent: a second
      open reclaims nothing.

   2. The abort lifecycle — a fault storm (30% rate) versus a 2-attempt
      retry budget forces merges to abort mid-build; every acknowledged
      insert must stay queryable throughout, and a reopen on a healthy
      device must drain the backlog with one flush.

   3. A seeded differential — random insert/delete/flush/reopen
      schedules against an in-memory oracle, every full scan compared
      exactly.

   Exits non-zero on any violation. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Pager = Prt_storage.Pager
module Failpoint = Prt_storage.Failpoint
module Retry = Prt_storage.Retry
module Entry = Prt_rtree.Entry
module Lsm = Prt_logmethod.Lsm

let page_size = 512
let everything = Rect.make ~xmin:(-1e9) ~ymin:(-1e9) ~xmax:1e9 ~ymax:1e9

let random_entries ~n ~seed =
  let rng = Rng.create seed in
  Array.init n (fun i ->
      let x = Rng.float rng 1.0 and y = Rng.float rng 1.0 in
      Entry.make
        (Rect.make ~xmin:x ~ymin:y
           ~xmax:(Float.min 1.0 (x +. 0.05))
           ~ymax:(Float.min 1.0 (y +. 0.05)))
        i)

let live_ids t =
  fst (Lsm.query_list t everything)
  |> List.map Entry.id |> List.sort Int.compare

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_temp_dir f =
  let dir = Filename.temp_file "prt_ingest_smoke" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let violations = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr violations;
      Printf.printf "VIOLATION: %s\n%!" msg)
    fmt

(* --- 1. the kill-point sweep --- *)

type op = I of Entry.t | D of Entry.t | F

let script =
  let entries = random_entries ~n:24 ~seed:3001 in
  let ops = ref [] in
  Array.iteri
    (fun i e ->
      ops := I e :: !ops;
      if i = 7 then ops := D entries.(1) :: !ops;
      if i = 15 then ops := D entries.(4) :: !ops)
    entries;
  List.rev (F :: !ops)

let expected_ids ops =
  let tbl = Hashtbl.create 64 in
  List.iter
    (function
      | I e -> Hashtbl.replace tbl (Entry.id e) ()
      | D e -> Hashtbl.remove tbl (Entry.id e)
      | F -> ())
    ops;
  List.sort Int.compare (Hashtbl.fold (fun id () acc -> id :: acc) tbl [])

let sweep_kill_points () =
  let budget = ref 0 in
  let finished = ref false in
  while not !finished do
    with_temp_dir (fun dir ->
        let crash = Failpoint.create (Failpoint.crash_after !budget) in
        let t = Lsm.create ~buffer_capacity:6 ~page_size ~crash dir in
        let acked = ref [] in
        let pending = ref None in
        let crashed =
          match
            List.iter
              (fun op ->
                pending := Some op;
                (match op with
                | I e -> Lsm.insert t e
                | D e -> ignore (Lsm.delete t e)
                | F -> Lsm.flush t);
                acked := op :: !acked;
                pending := None)
              script
          with
          | () ->
              finished := true;
              Lsm.close t;
              false
          | exception Failpoint.Simulated_crash _ -> true
        in
        (match Lsm.open_ ~buffer_capacity:6 ~page_size dir with
        | reopened ->
            let got = live_ids reopened in
            let want_acked = expected_ids (List.rev !acked) in
            let want_pending =
              match !pending with
              | None -> want_acked
              | Some op -> expected_ids (List.rev (op :: !acked))
            in
            if got <> want_acked && got <> want_pending then
              fail "kill point %d: reopened to %d ids (want %d or %d)"
                !budget (List.length got) (List.length want_acked)
                (List.length want_pending);
            (try Lsm.validate reopened
             with e ->
               fail "kill point %d: validate: %s" !budget (Printexc.to_string e));
            Lsm.close reopened;
            let again = Lsm.open_ ~buffer_capacity:6 ~page_size dir in
            if (Lsm.stats again).Lsm.s_orphans_reclaimed <> 0 then
              fail "kill point %d: recovery not idempotent" !budget;
            if live_ids again <> got then
              fail "kill point %d: second open diverged" !budget;
            Lsm.close again
        | exception e ->
            fail "kill point %d: reopen failed: %s" !budget
              (Printexc.to_string e));
        if crashed then (try Lsm.close t with _ -> ());
        incr budget)
  done;
  Printf.printf "kill-point sweep: %d ordinals, workload survives at %d\n%!"
    !budget (!budget - 1);
  if !budget < 40 then fail "sweep too small (%d kill points)" !budget

(* --- 2. the abort lifecycle --- *)

let abort_lifecycle () =
  with_temp_dir (fun dir ->
      let faults =
        Failpoint.create (Failpoint.uniform ~seed:11 ~max_consecutive:4 0.3)
      in
      let policy = { Retry.default_policy with Retry.attempts = 2 } in
      (* 2 attempts against a 30% fault rate: even [create]'s initial
         manifest write can exhaust its budget — retry at this level,
         like every acknowledged operation below. *)
      let rec make tries =
        match
          Lsm.create ~buffer_capacity:8 ~page_size ~faults
            ~retry_policy:policy dir
        with
        | t -> t
        | exception Pager.Io_error _ when tries > 0 ->
            rm_rf dir;
            make (tries - 1)
      in
      let t = make 30 in
      let entries = random_entries ~n:40 ~seed:3002 in
      let acked = ref 0 in
      Array.iter
        (fun e ->
          let rec go tries =
            match Lsm.insert t e with
            | () -> incr acked
            | exception Pager.Io_error _ when tries > 0 -> go (tries - 1)
            | exception Pager.Io_error _ -> ()
          in
          go 30)
        entries;
      if !acked <> 40 then fail "only %d/40 inserts acked under faults" !acked;
      if (Lsm.stats t).Lsm.s_merge_aborts < 1 then
        fail "fault storm produced no merge aborts";
      if List.length (live_ids t) <> !acked then
        fail "acked inserts lost under aborting merges";
      Lsm.close t;
      let t = Lsm.open_ ~buffer_capacity:8 ~page_size dir in
      if Lsm.count t <> 40 then
        fail "recovery lost data: count %d" (Lsm.count t);
      Lsm.flush t;
      if Lsm.buffer_size t <> 0 then fail "flush left a backlog";
      (try Lsm.validate t
       with e -> fail "post-recovery validate: %s" (Printexc.to_string e));
      Lsm.close t;
      Printf.printf "abort lifecycle: aborts observed, recovery drained\n%!")

(* --- 3. the seeded differential --- *)

let differential ~seed ~steps =
  with_temp_dir (fun dir ->
      let rng = Rng.create seed in
      let make fresh =
        (if fresh then Lsm.create else Lsm.open_)
          ~buffer_capacity:4 ~page_size ~wal_sync:`Never dir
      in
      let t = ref (make true) in
      let oracle = Hashtbl.create 64 in
      let next_id = ref 0 in
      for _ = 1 to steps do
        match Rng.int rng 100 with
        | r when r < 60 ->
            let x = Rng.float rng 1.0 and y = Rng.float rng 1.0 in
            let e =
              Entry.make
                (Rect.make ~xmin:x ~ymin:y ~xmax:(x +. 0.1) ~ymax:(y +. 0.1))
                !next_id
            in
            incr next_id;
            Lsm.insert !t e;
            Hashtbl.replace oracle (Entry.id e) ()
        | r when r < 75 ->
            if !next_id > 0 then begin
              let id = Rng.int rng !next_id in
              let lived = Hashtbl.mem oracle id in
              (* Rect is irrelevant for buffered deletes but must match
                 for stored ones; rebuild it from the id's seed is not
                 possible here, so delete only what a scan finds. *)
              match
                List.find_opt
                  (fun e -> Entry.id e = id)
                  (fst (Lsm.query_list !t everything))
              with
              | Some e ->
                  if not (Lsm.delete !t e) then
                    fail "seed %d: delete of live id %d refused" seed id;
                  Hashtbl.remove oracle id
              | None ->
                  if lived then fail "seed %d: live id %d not found" seed id
            end
        | r when r < 90 ->
            let got = live_ids !t in
            let want =
              List.sort Int.compare
                (Hashtbl.fold (fun id () acc -> id :: acc) oracle [])
            in
            if got <> want then
              fail "seed %d: scan diverged (%d vs %d ids)" seed
                (List.length got) (List.length want)
        | r when r < 96 -> Lsm.flush !t
        | _ ->
            Lsm.close !t;
            t := make false
      done;
      let got = live_ids !t in
      let want =
        List.sort Int.compare
          (Hashtbl.fold (fun id () acc -> id :: acc) oracle [])
      in
      if got <> want then fail "seed %d: final state diverged" seed;
      Lsm.close !t)

let () =
  sweep_kill_points ();
  abort_lifecycle ();
  List.iter (fun seed -> differential ~seed ~steps:60) [ 1; 2; 3; 4; 5 ];
  Printf.printf "differential: 5 seeds x 60 steps clean\n%!";
  if !violations > 0 then begin
    Printf.printf "%d violation(s)\n%!" !violations;
    exit 1
  end;
  print_endline "ingest smoke: all clear"
