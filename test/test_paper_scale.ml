(* Tests at the paper's real page geometry (4 KB pages, fanout 113) —
   the rest of the suite uses small pages to get deep trees cheaply;
   this one checks nothing breaks at production parameters. *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Datasets = Prt_workloads.Datasets

let pool () = Buffer_pool.create ~capacity:8192 (Pager.create_memory ())

let n = 30_000

let test_pr_at_paper_fanout () =
  let entries = Helpers.random_entries ~n ~seed:1 in
  let tree = Prt_prtree.Prtree.load (pool ()) entries in
  Alcotest.(check int) "fanout" 113 (Rtree.capacity tree);
  Alcotest.(check int) "height" 3 (Rtree.height tree);
  let s = Helpers.check_structure tree in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.2f reasonable" s.Rtree.utilization)
    true (s.Rtree.utilization > 0.85);
  Helpers.check_tree_queries ~nqueries:15 ~seed:2 tree entries

let test_packed_utilization_99 () =
  (* The paper reports > 99% utilization for its bulk loaders. *)
  let entries = Helpers.random_entries ~n ~seed:3 in
  List.iter
    (fun (name, load) ->
      let tree = load (pool ()) entries in
      let s = Helpers.check_structure tree in
      Alcotest.(check bool)
        (Printf.sprintf "%s utilization %.3f > 0.99" name s.Rtree.utilization)
        true (s.Rtree.utilization > 0.99))
    [
      ("h", fun p e -> Prt_rtree.Bulk_hilbert.load_h p e);
      ("h4", fun p e -> Prt_rtree.Bulk_hilbert.load_h4 p e);
      ("str", Prt_rtree.Bulk_str.load);
    ]

let test_tgs_at_paper_fanout () =
  let entries = Helpers.random_entries ~n:8_000 ~seed:4 in
  let tree = Prt_rtree.Bulk_tgs.load (pool ()) entries in
  ignore (Helpers.check_structure tree);
  Helpers.check_tree_queries ~nqueries:10 ~seed:5 tree entries

let test_sqrt_constant_at_paper_fanout () =
  (* The Lemma 2 constant at the real fanout: zero-output vertical lines
     on uniform points must visit only a few times sqrt(N/B) leaves. *)
  let entries = Datasets.uniform_points ~n:50_000 ~seed:6 in
  let tree = Prt_prtree.Prtree.load (pool ()) entries in
  let rng = Prt_util.Rng.create 7 in
  let total = ref 0 in
  let q = 25 in
  for _ = 1 to q do
    let x = Prt_util.Rng.float rng 1.0 in
    total := !total + (Rtree.query_count tree (Rect.make ~xmin:x ~ymin:0.0 ~xmax:x ~ymax:1.0)).Rtree.leaf_visited
  done;
  let mean = float_of_int !total /. float_of_int q in
  let bound = 3.0 *. sqrt (50_000.0 /. 113.0) in
  Alcotest.(check bool) (Printf.sprintf "%.1f <= %.1f" mean bound) true (mean <= bound)

let test_ext_pr_at_paper_fanout () =
  let entries = Helpers.random_entries ~n ~seed:8 in
  let p = pool () in
  let file = Entry.File.of_array (Buffer_pool.pager p) entries in
  let tree = Prt_prtree.Ext_build.load ~mem_records:5_000 p file in
  ignore (Helpers.check_structure tree);
  Helpers.check_tree_queries ~nqueries:10 ~seed:9 tree entries

let test_logmethod_at_paper_fanout () =
  let lm = Prt_logmethod.Logmethod.create (pool ()) in
  let entries = Helpers.random_entries ~n:10_000 ~seed:10 in
  Array.iter (Prt_logmethod.Logmethod.insert lm) entries;
  Prt_logmethod.Logmethod.validate lm;
  let q = Helpers.random_rect (Prt_util.Rng.create 11) in
  let result, _ = Prt_logmethod.Logmethod.query_list lm q in
  Alcotest.(check (list int)) "query" (Helpers.brute_force entries q) (Helpers.ids_of result)

let suite =
  [
    Alcotest.test_case "pr at fanout 113" `Quick test_pr_at_paper_fanout;
    Alcotest.test_case "packed loaders >99% utilization" `Quick test_packed_utilization_99;
    Alcotest.test_case "tgs at fanout 113" `Quick test_tgs_at_paper_fanout;
    Alcotest.test_case "lemma 2 constant at fanout 113" `Quick test_sqrt_constant_at_paper_fanout;
    Alcotest.test_case "external pr at fanout 113" `Quick test_ext_pr_at_paper_fanout;
    Alcotest.test_case "logmethod at fanout 113" `Quick test_logmethod_at_paper_fanout;
  ]
