(* Differential testing across every index implementation in the
   repository: for the same random rectangle set and query batch, all of
   them — five bulk loaders, the external builders, the dynamically
   built tree, the dynamic Hilbert R-tree, the logarithmic method, and
   (on points) the kdB-tree — must return exactly the same answers.

   This is the strongest cheap correctness signal the repo has: a bug in
   any one traversal, codec, split or build shows up as a disagreement
   with seven independent implementations.  The oracle loop itself lives
   in Helpers.check_impls_agree, shared with the fault-injection suite. *)

module Rng = Prt_util.Rng
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Hrt = Prt_rtree.Hilbert_rtree
module Logmethod = Prt_logmethod.Logmethod

let build_impls entries =
  let pool () = Helpers.small_pool () in
  let dynamic =
    let tree = Rtree.create_empty (pool ()) in
    Array.iter (Prt_rtree.Dynamic.insert tree) entries;
    tree
  in
  let hrt = Hrt.create (pool ()) in
  Array.iter (fun e -> Hrt.insert hrt (Entry.rect e) (Entry.id e)) entries;
  let lm = Logmethod.create ~buffer_capacity:14 (pool ()) in
  Array.iter (Logmethod.insert lm) entries;
  let ext_pr =
    let p = pool () in
    let file = Entry.File.of_array (Prt_storage.Buffer_pool.pager p) entries in
    Prt_prtree.Ext_build.load ~mem_records:200 p file
  in
  [
    Helpers.rtree_impl "pr" (Prt_prtree.Prtree.load (pool ()) entries);
    Helpers.rtree_impl "pr-ext" ext_pr;
    Helpers.rtree_impl "h" (Prt_rtree.Bulk_hilbert.load_h (pool ()) entries);
    Helpers.rtree_impl "h4" (Prt_rtree.Bulk_hilbert.load_h4 (pool ()) entries);
    Helpers.rtree_impl "str" (Prt_rtree.Bulk_str.load (pool ()) entries);
    Helpers.rtree_impl "tgs" (Prt_rtree.Bulk_tgs.load (pool ()) entries);
    Helpers.rtree_impl "dynamic" dynamic;
    {
      Helpers.impl_name = "hilbert-rtree";
      impl_query = (fun q -> List.sort Int.compare (fst (Hrt.query_ids hrt q)));
    };
    {
      Helpers.impl_name = "logmethod";
      impl_query = (fun q -> Helpers.ids_of (fst (Logmethod.query_list lm q)));
    };
  ]

let run_batch ~n ~seed ~make_entries =
  let entries = make_entries ~n ~seed in
  Helpers.check_impls_agree ~seed:(seed + 1) (build_impls entries) entries

let test_differential_random () =
  run_batch ~n:400 ~seed:10 ~make_entries:(fun ~n ~seed -> Helpers.random_entries ~n ~seed)

let test_differential_points () =
  (* Points additionally admit the kdB-tree. *)
  let entries = Prt_workloads.Datasets.uniform_points ~n:400 ~seed:20 in
  let impls =
    build_impls entries
    @ [ Helpers.rtree_impl "kdb" (Prt_rtree.Kdbtree.load (Helpers.small_pool ()) entries) ]
  in
  Helpers.check_impls_agree ~seed:21 impls entries

let test_differential_extreme () =
  run_batch ~n:300 ~seed:30 ~make_entries:(fun ~n ~seed ->
      Prt_workloads.Datasets.aspect ~n ~a:1000.0 ~seed)

let test_differential_duplicates () =
  run_batch ~n:300 ~seed:40 ~make_entries:(fun ~n ~seed ->
      let rng = Rng.create seed in
      let protos = Array.init 3 (fun _ -> Helpers.random_rect rng) in
      Array.init n (fun i -> Entry.make protos.(i mod 3) i))

let suite =
  [
    Alcotest.test_case "all implementations agree (random rects)" `Quick test_differential_random;
    Alcotest.test_case "all implementations agree (points, incl. kdB)" `Quick
      test_differential_points;
    Alcotest.test_case "all implementations agree (high aspect)" `Quick test_differential_extreme;
    Alcotest.test_case "all implementations agree (duplicates)" `Quick
      test_differential_duplicates;
  ]
