(* Observability smoke (test half of @obs-smoke; the bench half runs
   the regression gate's selftest): a deterministic concurrent-metrics
   matrix — D domains hammering shared counters/histograms must sum
   exactly once joined — and a flight-recorder round-trip: a multicore
   query batch with per-domain recording, dumped to a Chrome trace file
   that must parse back with balanced per-track spans, plus a recorded
   failure that must appear in the autodump.  Exits 1 on any
   violation. *)

module Json = Prt_obs.Json
module Metrics = Prt_obs.Metrics
module Flight = Prt_obs.Flight
module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Rng = Prt_util.Rng
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Qexec = Prt_rtree.Qexec
module Prtree = Prt_prtree.Prtree

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.printf "FAIL %s\n%!" name
  end

(* --- concurrent-metrics matrix --- *)

let metrics_matrix () =
  List.iter
    (fun (domains, ops) ->
      let c = Metrics.counter "obs_smoke.count" in
      let h = Metrics.histogram "obs_smoke.hist" in
      let c0 = Metrics.value c in
      let n0 = Metrics.histogram_count h in
      let s0 = Metrics.histogram_sum h in
      Metrics.set_collecting true;
      let worker () =
        for i = 1 to ops do
          Metrics.tick c;
          Metrics.observe h ((i mod 32) + 1)
        done
      in
      let doms = Array.init domains (fun _ -> Domain.spawn worker) in
      Array.iter Domain.join doms;
      Metrics.set_collecting false;
      let expect_sum = ref 0 in
      for i = 1 to ops do
        expect_sum := !expect_sum + (i mod 32) + 1
      done;
      let tag = Printf.sprintf "metrics %dx%d" domains ops in
      check (tag ^ ": counter exact") (Metrics.value c - c0 = domains * ops);
      check (tag ^ ": histogram count exact") (Metrics.histogram_count h - n0 = domains * ops);
      check (tag ^ ": histogram sum exact") (Metrics.histogram_sum h - s0 = domains * !expect_sum);
      Printf.printf "metrics matrix: %d domains x %d ops ok\n%!" domains ops)
    [ (2, 5_000); (4, 2_000); (8, 500) ]

(* --- flight-recorder dump round-trip --- *)

(* The same well-formedness bench/check_json.ml enforces: monotone
   timestamps, per-tid B/E balance, X durations >= 0. *)
let validate_trace path =
  let doc = Json.of_file path in
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ ->
        check (path ^ ": traceEvents present") false;
        []
  in
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let last_ts = ref neg_infinity in
  List.iter
    (fun e ->
      let str k = Option.bind (Json.member k e) Json.to_str in
      let num k = Option.bind (Json.member k e) Json.to_number in
      (match num "ts" with
      | Some ts ->
          check "monotone ts" (ts >= !last_ts);
          last_ts := ts
      | None -> check "event has ts" false);
      let tid = match num "tid" with Some t -> int_of_float t | None -> 0 in
      let stack = Option.value (Hashtbl.find_opt stacks tid) ~default:[] in
      match (str "ph", str "name") with
      | Some "B", Some n -> Hashtbl.replace stacks tid (n :: stack)
      | Some "E", Some n -> (
          match stack with
          | top :: rest when top = n -> Hashtbl.replace stacks tid rest
          | _ -> check "E matches B per tid" false)
      | Some "X", _ -> check "X has dur >= 0" (match num "dur" with Some d -> d >= 0. | None -> false)
      | Some "i", _ -> ()
      | _ -> check "known ph" false)
    events;
  Hashtbl.iter (fun _ stack -> check "per-tid stacks drained" (stack = [])) stacks;
  events

let flight_roundtrip () =
  let dump = Filename.temp_file "obs_smoke" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Flight.set_dump_path None;
      try Sys.remove dump with Sys_error _ -> ())
    (fun () ->
      Flight.set_dump_path (Some dump);
      Flight.clear ();
      (* A real multicore batch: every worker domain records query
         spans on its own ring. *)
      let pool = Buffer_pool.create ~capacity:4096 (Pager.create_memory ()) in
      let rng = Rng.create 77 in
      let entries =
        Array.init 3_000 (fun i ->
            let x = Rng.float rng 1.0 and y = Rng.float rng 1.0 in
            Entry.make (Rect.make ~xmin:x ~ymin:y ~xmax:(x +. 0.01) ~ymax:(y +. 0.01)) i)
      in
      let tree = Prtree.load pool entries in
      let queries =
        Array.init 32 (fun i ->
            let lo = float_of_int (i mod 8) /. 10.0 in
            Rect.make ~xmin:lo ~ymin:lo ~xmax:(lo +. 0.2) ~ymax:(lo +. 0.2))
      in
      ignore (Qexec.run ~jobs:4 (Qexec.create tree) queries);
      check "batch recorded events" (Flight.total_recorded () > 0);
      (* The autodump: a recorded failure writes every ring to disk. *)
      Flight.failure "obs_smoke.injected" ~arg:42 ~note:"synthetic failure";
      let events = validate_trace dump in
      check "dump non-empty" (events <> []);
      let has_failure =
        List.exists (fun e -> Json.member "name" e = Some (Json.Str "obs_smoke.injected")) events
      in
      let has_query =
        List.exists (fun e -> Json.member "name" e = Some (Json.Str "qexec.query")) events
      in
      check "failure event in dump" has_failure;
      check "worker query spans in dump" has_query;
      Printf.printf "flight round-trip: %d events, per-tid spans balanced\n%!"
        (List.length events))

let () =
  metrics_matrix ();
  flight_roundtrip ();
  if !failures > 0 then begin
    Printf.printf "obs smoke: %d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "obs smoke: ok"
