(* External sort tests: record files roundtrip exactly, sorting agrees
   with in-memory sorting across memory budgets, and the I/O accounting
   behaves plausibly. *)

module Pager = Prt_storage.Pager
module Page = Prt_storage.Page

module Int_record = struct
  type t = int

  let size = 8
  let write buf off v = Bytes.set_int64_le buf off (Int64.of_int v)
  let read buf off = Int64.to_int (Bytes.get_int64_le buf off)
end

module Int_file = Prt_extsort.Record_file.Make (Int_record)

let page_size = 64 (* 8 records per page: multi-page files from tiny inputs *)
let per_page = page_size / Int_record.size

let make_pager () = Pager.create_memory ~page_size ()

let test_roundtrip () =
  let pager = make_pager () in
  let values = Array.init 100 (fun i -> (i * 37) mod 91) in
  let file = Int_file.of_array pager values in
  Alcotest.(check int) "length" 100 (Int_file.length file);
  Alcotest.(check (array int)) "roundtrip" values (Int_file.read_all file)

let test_empty_file () =
  let pager = make_pager () in
  let file = Int_file.of_array pager [||] in
  Alcotest.(check int) "length" 0 (Int_file.length file);
  Alcotest.(check (array int)) "read_all" [||] (Int_file.read_all file);
  Alcotest.(check int) "no pages" 0 (Int_file.pages_used file)

let test_partial_tail_page () =
  let pager = make_pager () in
  let values = Array.init (per_page + 3) Fun.id in
  let file = Int_file.of_array pager values in
  Alcotest.(check int) "two pages" 2 (Int_file.pages_used file);
  Alcotest.(check (array int)) "content" values (Int_file.read_all file)

let test_append_after_seal () =
  let pager = make_pager () in
  let file = Int_file.of_array pager [| 1 |] in
  Alcotest.(check bool) "raises" true
    (try
       Int_file.append file 2;
       false
     with Invalid_argument _ -> true)

let test_reader_before_seal () =
  let pager = make_pager () in
  let file = Int_file.create pager in
  Int_file.append file 1;
  Alcotest.(check bool) "raises" true
    (try
       ignore (Int_file.reader file);
       false
     with Invalid_argument _ -> true)

let test_iter_order () =
  let pager = make_pager () in
  let values = Array.init 50 (fun i -> i * i) in
  let file = Int_file.of_array pager values in
  let seen = ref [] in
  Int_file.iter file (fun v -> seen := v :: !seen);
  Alcotest.(check (list int)) "in order" (Array.to_list values) (List.rev !seen)

let test_destroy_frees_pages () =
  let pager = make_pager () in
  let file = Int_file.of_array pager (Array.init 100 Fun.id) in
  let used = Pager.num_pages pager in
  Int_file.destroy file;
  (* A new file of the same size must fit entirely in recycled pages. *)
  let _file2 = Int_file.of_array pager (Array.init 100 Fun.id) in
  Alcotest.(check int) "pages recycled" used (Pager.num_pages pager)

let check_sorted_matches ~mem_records values =
  let pager = make_pager () in
  let file = Int_file.of_array pager values in
  let sorted = Int_file.sort ~mem_records ~cmp:Int.compare file in
  let expected = Array.copy values in
  Array.sort Int.compare expected;
  Int_file.read_all sorted = expected && Int_file.length sorted = Array.length values

let prop_sort_small_memory =
  QCheck.Test.make ~name:"external sort matches Array.sort (tiny memory)" ~count:60
    QCheck.(list_of_size Gen.(int_range 0 500) int)
    (fun l -> check_sorted_matches ~mem_records:(2 * per_page) (Array.of_list l))

let prop_sort_medium_memory =
  QCheck.Test.make ~name:"external sort matches Array.sort (several runs)" ~count:60
    QCheck.(list_of_size Gen.(int_range 0 500) int)
    (fun l -> check_sorted_matches ~mem_records:(5 * per_page) (Array.of_list l))

let prop_sort_ample_memory =
  QCheck.Test.make ~name:"external sort matches Array.sort (single run)" ~count:60
    QCheck.(list_of_size Gen.(int_range 0 300) int)
    (fun l -> check_sorted_matches ~mem_records:10_000 (Array.of_list l))

let test_sort_rejects_tiny_budget () =
  let pager = make_pager () in
  let file = Int_file.of_array pager [| 3; 1; 2 |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Int_file.sort ~mem_records:(per_page + 1) ~cmp:Int.compare file);
       false
     with Invalid_argument _ -> true)

let test_sort_stability_of_input () =
  (* The input file must survive sorting (it is not destroyed). *)
  let pager = make_pager () in
  let values = [| 5; 3; 9; 1 |] in
  let file = Int_file.of_array pager values in
  let _sorted = Int_file.sort ~mem_records:(2 * per_page) ~cmp:Int.compare file in
  Alcotest.(check (array int)) "input intact" values (Int_file.read_all file)

let test_sort_io_accounting () =
  (* Sorting must cost more than a constant number of passes but not be
     absurd: between 2 and ~4 log-factor scans of the data. *)
  let pager = make_pager () in
  let n = 2000 in
  let rng = Prt_util.Rng.create 77 in
  let values = Array.init n (fun _ -> Prt_util.Rng.int rng 1_000_000) in
  let file = Int_file.of_array pager values in
  let data_pages = Int_file.pages_used file in
  let before = Pager.snapshot pager in
  let sorted = Int_file.sort ~mem_records:(8 * per_page) ~cmp:Int.compare file in
  let d = Pager.diff ~before ~after:(Pager.snapshot pager) in
  Alcotest.(check bool) "sorted" true (Int_file.read_all sorted |> fun a ->
    let e = Array.copy values in Array.sort Int.compare e; a = e);
  let total = Pager.total_io d in
  Alcotest.(check bool)
    (Printf.sprintf "io %d within [2, 40] data scans (%d pages)" total data_pages)
    true
    (total >= 2 * data_pages && total <= 40 * data_pages)

let test_sort_duplicates () =
  let values = Array.make 200 7 in
  Alcotest.(check bool) "all-equal input" true (check_sorted_matches ~mem_records:16 values)

let suite =
  [
    Alcotest.test_case "file: roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "file: empty" `Quick test_empty_file;
    Alcotest.test_case "file: partial tail page" `Quick test_partial_tail_page;
    Alcotest.test_case "file: append after seal" `Quick test_append_after_seal;
    Alcotest.test_case "file: reader before seal" `Quick test_reader_before_seal;
    Alcotest.test_case "file: iter order" `Quick test_iter_order;
    Alcotest.test_case "file: destroy frees pages" `Quick test_destroy_frees_pages;
    Helpers.qcheck_case prop_sort_small_memory;
    Helpers.qcheck_case prop_sort_medium_memory;
    Helpers.qcheck_case prop_sort_ample_memory;
    Alcotest.test_case "sort: rejects tiny budget" `Quick test_sort_rejects_tiny_budget;
    Alcotest.test_case "sort: input intact" `Quick test_sort_stability_of_input;
    Alcotest.test_case "sort: io accounting" `Quick test_sort_io_accounting;
    Alcotest.test_case "sort: duplicates" `Quick test_sort_duplicates;
  ]
