(* kdB-tree tests: exact queries on point data, rejection of rectangles
   with extent, and the optimality comparison with the PR-tree on the
   Theorem 3 grid (both must stay at O(sqrt(N/B)) — the paper's
   Section 1.1 point about point data). *)

module Rect = Prt_geom.Rect
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Kdbtree = Prt_rtree.Kdbtree
module Datasets = Prt_workloads.Datasets

let test_queries_match_oracle () =
  List.iter
    (fun n ->
      let entries = Datasets.uniform_points ~n ~seed:(n + 1) in
      let pool = Helpers.small_pool () in
      let tree = Kdbtree.load pool entries in
      let s = Helpers.check_structure tree in
      Alcotest.(check int) "entries" n s.Rtree.entries;
      Helpers.check_tree_queries ~seed:(n * 11) tree entries)
    [ 0; 1; 14; 100; 800 ]

let test_rejects_extent () =
  let entries = [| Entry.make (Rect.make ~xmin:0.1 ~ymin:0.1 ~xmax:0.2 ~ymax:0.2) 0 |] in
  Alcotest.check_raises "raises Not_points" Kdbtree.Not_points (fun () ->
      ignore (Kdbtree.load (Helpers.small_pool ()) entries))

let test_worst_case_grid_optimal () =
  (* On the Theorem 3 grid both the kdB-tree and the PR-tree must stay
     near sqrt(N/B) for the zero-output line query. *)
  let b = 14 in
  let wc = Datasets.worst_case ~columns_log2:6 ~b in
  let query = Datasets.worst_case_query wc ~row:(b / 2) in
  let bound tree =
    let stats = Rtree.query_count tree query in
    Alcotest.(check int) "zero output" 0 stats.Rtree.matched;
    stats.Rtree.leaf_visited
  in
  let kdb = bound (Kdbtree.load (Helpers.small_pool ()) wc.Datasets.entries) in
  let pr = bound (Prt_prtree.Prtree.load (Helpers.small_pool ()) wc.Datasets.entries) in
  let n = Array.length wc.Datasets.entries in
  let sqrt_nb = sqrt (float_of_int n /. float_of_int b) in
  Alcotest.(check bool)
    (Printf.sprintf "kdb %d and pr %d within 8*sqrt(N/B)=%.0f" kdb pr (8.0 *. sqrt_nb))
    true
    (float_of_int kdb <= 8.0 *. sqrt_nb && float_of_int pr <= 8.0 *. sqrt_nb)

let test_tiling_no_overlap () =
  (* kd cells tile the plane: sibling overlap at the leaf level must be
     (near) zero for points in general position. *)
  let entries = Datasets.uniform_points ~n:1000 ~seed:5 in
  let tree = Kdbtree.load (Helpers.small_pool ()) entries in
  let m = Prt_rtree.Metrics.analyze tree in
  Alcotest.(check bool)
    (Printf.sprintf "leaf overlap %.8f tiny" m.Prt_rtree.Metrics.leaf_overlap)
    true
    (m.Prt_rtree.Metrics.leaf_overlap < 1e-6)

let suite =
  [
    Alcotest.test_case "queries match oracle" `Quick test_queries_match_oracle;
    Alcotest.test_case "rejects rectangles with extent" `Quick test_rejects_extent;
    Alcotest.test_case "worst-case grid optimal" `Quick test_worst_case_grid_optimal;
    Alcotest.test_case "kd cells tile (no overlap)" `Quick test_tiling_no_overlap;
  ]
