(* Robustness and failure-injection tests: corrupted pages must be
   detected, not silently misread; caches under extreme pressure must
   stay coherent; file-backed indexes must survive close/reopen. *)

module Rect = Prt_geom.Rect
module Page = Prt_storage.Page
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Entry = Prt_rtree.Entry
module Node = Prt_rtree.Node
module Rtree = Prt_rtree.Rtree
module Dynamic = Prt_rtree.Dynamic

let with_temp_file f =
  let path = Filename.temp_file "prt_robust" ".pages" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* --- corruption detection --- *)

let test_corrupt_kind_byte () =
  let pool = Helpers.small_pool () in
  let entries = Helpers.random_entries ~n:100 ~seed:1 in
  let tree = Prt_prtree.Prtree.load pool entries in
  (* Smash the root's kind byte in the pager, bypassing the cache. *)
  Buffer_pool.flush pool;
  let pager = Buffer_pool.pager pool in
  let buf = Pager.read pager (Rtree.root tree) in
  Page.set_u8 buf 0 7;
  Pager.write pager (Rtree.root tree) buf;
  (* A cold pool must refuse to decode it. *)
  let cold = Buffer_pool.create ~capacity:8 pager in
  let reopened =
    Rtree.of_root ~pool:cold ~root:(Rtree.root tree) ~height:(Rtree.height tree)
      ~count:(Rtree.count tree)
  in
  Alcotest.(check bool) "decode raises" true
    (try
       ignore (Rtree.query_count reopened (Rect.point 0.5 0.5));
       false
     with Invalid_argument _ -> true)

let test_corrupt_child_pointer_detected () =
  let pool = Helpers.small_pool () in
  let entries = Helpers.random_entries ~n:400 ~seed:2 in
  let tree = Prt_prtree.Prtree.load pool entries in
  (* Point the root's first child at a leaf page that is not its child:
     validation must notice the MBR mismatch. *)
  let root_node = Rtree.read_node tree (Rtree.root tree) in
  Alcotest.(check bool) "multi-level tree" true (Node.kind root_node = Node.Internal);
  let root_entries = Node.entries root_node in
  let a = root_entries.(0) and b = root_entries.(1) in
  root_entries.(0) <- Entry.make (Entry.rect a) (Entry.id b);
  Rtree.write_node tree (Rtree.root tree) (Node.make Node.Internal root_entries);
  Alcotest.(check bool) "validate raises" true
    (try
       ignore (Rtree.validate tree);
       false
     with Rtree.Invalid _ -> true)

let test_truncated_index_file () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc "this is not a multiple of the page size";
      close_out oc;
      Alcotest.(check bool) "open_file raises" true
        (try
           ignore (Pager.open_file path);
           false
         with Invalid_argument _ -> true))

let test_load_meta_garbage () =
  let pool = Helpers.small_pool () in
  let page = Buffer_pool.alloc pool in
  Buffer_pool.write pool page (Bytes.make Helpers.small_page_size '\042');
  Alcotest.(check bool) "bad magic raises" true
    (try
       ignore (Rtree.load_meta pool ~meta_page:page);
       false
     with Invalid_argument _ -> true)

(* --- cache pressure --- *)

let test_query_correct_under_tiny_cache () =
  (* A 2-page cache forces constant eviction during both build and
     query; results must be identical to the brute-force oracle. *)
  let pager = Pager.create_memory ~page_size:Helpers.small_page_size () in
  let pool = Buffer_pool.create ~capacity:2 pager in
  let entries = Helpers.random_entries ~n:500 ~seed:3 in
  let tree = Prt_rtree.Bulk_hilbert.load_h pool entries in
  ignore (Helpers.check_structure tree);
  Helpers.check_tree_queries ~seed:4 tree entries

let test_updates_correct_under_tiny_cache () =
  let pager = Pager.create_memory ~page_size:Helpers.small_page_size () in
  let pool = Buffer_pool.create ~capacity:2 pager in
  let tree = Rtree.create_empty pool in
  let entries = Helpers.random_entries ~n:200 ~seed:5 in
  Array.iter (Dynamic.insert tree) entries;
  Array.iteri (fun i e -> if i mod 2 = 0 then ignore (Dynamic.delete tree e)) entries;
  ignore (Helpers.check_structure tree);
  let survivors =
    Array.of_list (Array.to_list entries |> List.filteri (fun i _ -> i mod 2 = 1))
  in
  Helpers.check_tree_queries ~seed:6 tree survivors

let test_logmethod_under_tiny_cache () =
  let pager = Pager.create_memory ~page_size:Helpers.small_page_size () in
  let pool = Buffer_pool.create ~capacity:2 pager in
  let t = Prt_logmethod.Logmethod.create ~buffer_capacity:14 pool in
  let entries = Helpers.random_entries ~n:300 ~seed:7 in
  Array.iter (Prt_logmethod.Logmethod.insert t) entries;
  Prt_logmethod.Logmethod.validate t;
  let q = Helpers.random_rect (Prt_util.Rng.create 8) in
  let result, _ = Prt_logmethod.Logmethod.query_list t q in
  Alcotest.(check (list int)) "query under pressure" (Helpers.brute_force entries q)
    (Helpers.ids_of result)

(* --- file-backed persistence --- *)

let test_file_backed_tree_roundtrip () =
  with_temp_file (fun path ->
      let entries = Helpers.random_entries ~n:300 ~seed:9 in
      (* Build and persist. *)
      let pager = Pager.create_file ~page_size:Helpers.small_page_size path in
      let pool = Buffer_pool.create ~capacity:64 pager in
      let meta = Buffer_pool.alloc pool in
      let tree = Prt_prtree.Prtree.load pool entries in
      Rtree.save_meta tree ~meta_page:meta;
      Buffer_pool.flush pool;
      Pager.close pager;
      (* Reopen cold and verify. *)
      let pager = Pager.open_file ~page_size:Helpers.small_page_size path in
      let pool = Buffer_pool.create ~capacity:64 pager in
      let tree = Rtree.load_meta pool ~meta_page:meta in
      Alcotest.(check int) "count" 300 (Rtree.count tree);
      ignore (Helpers.check_structure tree);
      Helpers.check_tree_queries ~seed:10 tree entries;
      Pager.close pager)

let test_file_backed_updates_persist () =
  with_temp_file (fun path ->
      let entries = Helpers.random_entries ~n:100 ~seed:11 in
      let extra = Entry.make (Rect.point 0.123 0.456) 999 in
      let pager = Pager.create_file ~page_size:Helpers.small_page_size path in
      let pool = Buffer_pool.create ~capacity:64 pager in
      let meta = Buffer_pool.alloc pool in
      let tree = Prt_rtree.Bulk_hilbert.load_h pool entries in
      Dynamic.insert tree extra;
      ignore (Dynamic.delete tree entries.(0));
      Rtree.save_meta tree ~meta_page:meta;
      Buffer_pool.flush pool;
      Pager.close pager;
      let pager = Pager.open_file ~page_size:Helpers.small_page_size path in
      let pool = Buffer_pool.create ~capacity:64 pager in
      let tree = Rtree.load_meta pool ~meta_page:meta in
      Alcotest.(check int) "count survived" 100 (Rtree.count tree);
      let hits, _ = Rtree.query_list tree (Rect.point 0.123 0.456) in
      Alcotest.(check bool) "inserted entry present" true
        (List.exists (fun e -> Entry.id e = 999) hits);
      let hits, _ = Rtree.query_list tree (Entry.rect entries.(0)) in
      Alcotest.(check bool) "deleted entry gone" false
        (List.exists (fun e -> Entry.id e = Entry.id entries.(0)) hits);
      Pager.close pager)

(* --- odd record geometries in the extsort layer --- *)

module Odd_record = struct
  type t = int * int

  let size = 12 (* 64-byte pages hold 5 with 4 bytes of slack *)

  let write buf off (a, b) =
    Page.set_i32 buf off a;
    Bytes.set_int64_le buf (off + 4) (Int64.of_int b)

  let read buf off = (Page.get_i32 buf off, Int64.to_int (Bytes.get_int64_le buf (off + 4)))
end

module Odd_file = Prt_extsort.Record_file.Make (Odd_record)

let test_extsort_odd_record_size () =
  let pager = Pager.create_memory ~page_size:64 () in
  let values = Array.init 123 (fun i -> ((i * 7) mod 31, i)) in
  let file = Odd_file.of_array pager values in
  Alcotest.(check bool) "roundtrip" true (Odd_file.read_all file = values);
  let sorted = Odd_file.sort ~mem_records:20 ~cmp:compare file in
  let expected = Array.copy values in
  Array.sort compare expected;
  Alcotest.(check bool) "sorted" true (Odd_file.read_all sorted = expected)

let suite =
  [
    Alcotest.test_case "corrupt kind byte detected" `Quick test_corrupt_kind_byte;
    Alcotest.test_case "corrupt child pointer detected" `Quick
      test_corrupt_child_pointer_detected;
    Alcotest.test_case "truncated index file rejected" `Quick test_truncated_index_file;
    Alcotest.test_case "garbage metadata rejected" `Quick test_load_meta_garbage;
    Alcotest.test_case "queries correct under 2-page cache" `Quick
      test_query_correct_under_tiny_cache;
    Alcotest.test_case "updates correct under 2-page cache" `Quick
      test_updates_correct_under_tiny_cache;
    Alcotest.test_case "logmethod correct under 2-page cache" `Quick
      test_logmethod_under_tiny_cache;
    Alcotest.test_case "file-backed tree roundtrip" `Quick test_file_backed_tree_roundtrip;
    Alcotest.test_case "file-backed updates persist" `Quick test_file_backed_updates_persist;
    Alcotest.test_case "extsort with page slack" `Quick test_extsort_odd_record_size;
  ]
