(* Tests for the extended feature set: k-NN search, spatial join,
   stabbing/enclosure/covering queries, the external STR loader, R*
   forced reinsertion, and the priority-leaf ablation knob. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Knn = Prt_rtree.Knn
module Join = Prt_rtree.Join
module Query = Prt_rtree.Query
module Dynamic = Prt_rtree.Dynamic
module Ext_load = Prt_rtree.Ext_load
module Datasets = Prt_workloads.Datasets

(* --- k-NN --- *)

let dist_point_rect ~x ~y r = sqrt (Knn.mindist2 ~x ~y r)

let brute_knn entries ~x ~y ~k =
  Array.to_list entries
  |> List.map (fun e -> (dist_point_rect ~x ~y (Entry.rect e), Entry.id e))
  |> List.sort compare
  |> List.filteri (fun i _ -> i < k)

let test_knn_matches_brute_force () =
  let entries = Helpers.random_entries ~n:500 ~seed:1 in
  let tree = Prt_rtree.Bulk_hilbert.load_h (Helpers.small_pool ()) entries in
  let rng = Rng.create 2 in
  for _ = 1 to 25 do
    let x = Rng.float rng 1.0 and y = Rng.float rng 1.0 in
    let k = 1 + Rng.int rng 20 in
    let result, _ = Knn.nearest tree ~x ~y ~k in
    let expected = brute_knn entries ~x ~y ~k in
    Alcotest.(check int) "k results" k (List.length result);
    (* Distances must match exactly (ids may differ under ties). *)
    List.iteri
      (fun i (e, d) ->
        let ed, _ = List.nth expected i in
        ignore e;
        Alcotest.(check (float 1e-9)) "distance" ed d)
      result
  done

let test_knn_ordering_and_exhaustion () =
  let entries = Helpers.random_entries ~n:120 ~seed:3 in
  let tree = Prt_prtree.Prtree.load (Helpers.small_pool ()) entries in
  let result, _ = Knn.nearest tree ~x:0.5 ~y:0.5 ~k:1000 in
  Alcotest.(check int) "exhausts the tree" 120 (List.length result);
  let dists = List.map snd result in
  Alcotest.(check bool) "nearest first" true (List.sort compare dists = dists)

let test_knn_zero_inside () =
  let r = Rect.make ~xmin:0.4 ~ymin:0.4 ~xmax:0.6 ~ymax:0.6 in
  let tree =
    Prt_rtree.Bulk_hilbert.load_h (Helpers.small_pool ()) [| Entry.make r 0 |]
  in
  let result, _ = Knn.nearest tree ~x:0.5 ~y:0.5 ~k:1 in
  match result with
  | [ (_, d) ] -> Alcotest.(check (float 0.0)) "inside = distance 0" 0.0 d
  | _ -> Alcotest.fail "expected one result"

let test_knn_within () =
  let entries = Datasets.uniform_points ~n:300 ~seed:4 in
  let tree = Prt_prtree.Prtree.load (Helpers.small_pool ()) entries in
  let radius = 0.1 in
  let result, _ = Knn.within tree ~x:0.5 ~y:0.5 ~radius in
  let expected =
    Array.to_list entries
    |> List.filter (fun e -> dist_point_rect ~x:0.5 ~y:0.5 (Entry.rect e) <= radius)
    |> List.length
  in
  Alcotest.(check int) "within count" expected (List.length result);
  List.iter (fun (_, d) -> Alcotest.(check bool) "inside radius" true (d <= radius)) result

let test_knn_empty_tree () =
  let tree = Rtree.create_empty (Helpers.small_pool ()) in
  let result, _ = Knn.nearest tree ~x:0.1 ~y:0.1 ~k:5 in
  Alcotest.(check int) "no results" 0 (List.length result)

let test_knn_nodes_read_bounded () =
  (* Small k on a big tree must not read the whole tree. *)
  let entries = Datasets.uniform_points ~n:3000 ~seed:5 in
  let tree = Prt_prtree.Prtree.load (Helpers.small_pool ()) entries in
  let s = Rtree.validate tree in
  let _, stats = Knn.nearest tree ~x:0.5 ~y:0.5 ~k:5 in
  Alcotest.(check bool)
    (Printf.sprintf "read %d of %d nodes" stats.Knn.nodes_read s.Rtree.nodes)
    true
    (stats.Knn.nodes_read * 4 < s.Rtree.nodes)

(* --- spatial join --- *)

let brute_join left right =
  let acc = ref [] in
  Array.iter
    (fun l ->
      Array.iter
        (fun r ->
          if Rect.intersects (Entry.rect l) (Entry.rect r) then
            acc := (Entry.id l, Entry.id r) :: !acc)
        right)
    left;
  List.sort compare !acc

let test_join_matches_brute_force () =
  let left = Helpers.random_entries ~n:150 ~seed:6 in
  let right = Helpers.random_entries ~n:200 ~seed:7 in
  let tl = Prt_prtree.Prtree.load (Helpers.small_pool ()) left in
  let tr = Prt_rtree.Bulk_hilbert.load_h (Helpers.small_pool ()) right in
  let pairs, stats = Join.pairs_list tl tr in
  let got = List.sort compare (List.map (fun (l, r) -> (Entry.id l, Entry.id r)) pairs) in
  let expected = brute_join left right in
  Alcotest.(check int) "pair count" (List.length expected) stats.Join.pairs;
  Alcotest.(check (list (pair int int))) "pairs" expected got

let test_join_disjoint_worlds () =
  let left = Helpers.random_entries ~n:100 ~seed:8 in
  let shift = Array.map
      (fun e ->
        let r = Entry.rect e in
        Entry.make
          (Rect.make ~xmin:(Rect.xmin r +. 10.0) ~ymin:(Rect.ymin r) ~xmax:(Rect.xmax r +. 10.0)
             ~ymax:(Rect.ymax r))
          (Entry.id e))
      left
  in
  let tl = Prt_prtree.Prtree.load (Helpers.small_pool ()) left in
  let tr = Prt_prtree.Prtree.load (Helpers.small_pool ()) shift in
  let pairs, stats = Join.pairs_list tl tr in
  Alcotest.(check int) "no pairs" 0 (List.length pairs);
  (* Disjoint root boxes: not a single node read. *)
  Alcotest.(check int) "no node reads" 0 (stats.Join.nodes_read_left + stats.Join.nodes_read_right)

let test_join_with_window () =
  let left = Helpers.random_entries ~n:150 ~seed:9 in
  let right = Helpers.random_entries ~n:150 ~seed:10 in
  let window = Rect.make ~xmin:0.25 ~ymin:0.25 ~xmax:0.5 ~ymax:0.5 in
  let tl = Prt_prtree.Prtree.load (Helpers.small_pool ()) left in
  let tr = Prt_prtree.Prtree.load (Helpers.small_pool ()) right in
  let pairs, _ = Join.pairs_list ~window tl tr in
  let expected =
    brute_join left right
    |> List.filter (fun (lid, rid) ->
           let l = left.(lid) and r = right.(rid) in
           (* Window restriction: both rectangles intersect the window
              (their intersection may still fall outside; the join is
              conservative on entries, exact on pairs within). *)
           Rect.intersects (Entry.rect l) window && Rect.intersects (Entry.rect r) window)
  in
  let got = List.sort compare (List.map (fun (l, r) -> (Entry.id l, Entry.id r)) pairs) in
  Alcotest.(check (list (pair int int))) "windowed pairs" expected got

let test_self_join () =
  let entries = Helpers.random_entries ~n:120 ~seed:11 in
  let tree = Prt_prtree.Prtree.load (Helpers.small_pool ()) entries in
  let count = ref 0 in
  let stats = Join.self_pairs tree ~f:(fun l r ->
      incr count;
      Alcotest.(check bool) "ordered ids" true (Entry.id l < Entry.id r))
  in
  let expected =
    brute_join entries entries |> List.filter (fun (a, b) -> a < b) |> List.length
  in
  Alcotest.(check int) "self pairs reported" expected !count;
  Alcotest.(check int) "self pairs counted" expected stats.Join.pairs

let test_join_heights_differ () =
  let small = Helpers.random_entries ~n:10 ~seed:12 in
  let big = Helpers.random_entries ~n:800 ~seed:13 in
  let ts = Prt_prtree.Prtree.load (Helpers.small_pool ()) small in
  let tb = Prt_prtree.Prtree.load (Helpers.small_pool ()) big in
  Alcotest.(check bool) "heights differ" true (Rtree.height ts <> Rtree.height tb);
  let pairs, _ = Join.pairs_list ts tb in
  let got = List.sort compare (List.map (fun (l, r) -> (Entry.id l, Entry.id r)) pairs) in
  Alcotest.(check (list (pair int int))) "pairs" (brute_join small big) got

(* --- query variants --- *)

let test_stabbing () =
  let entries = Helpers.random_entries ~n:400 ~seed:14 in
  let tree = Prt_prtree.Prtree.load (Helpers.small_pool ()) entries in
  let rng = Rng.create 15 in
  for _ = 1 to 30 do
    let x = Rng.float rng 1.0 and y = Rng.float rng 1.0 in
    let result, _ = Query.stabbing_list tree ~x ~y in
    let expected =
      Array.to_list entries
      |> List.filter (fun e -> Rect.contains_point (Entry.rect e) x y)
      |> List.map Entry.id
      |> List.sort Int.compare
    in
    Alcotest.(check (list int)) "stabbing" expected (Helpers.ids_of result)
  done

let test_enclosed () =
  let entries = Helpers.random_entries ~n:400 ~seed:16 in
  let tree = Prt_rtree.Bulk_tgs.load (Helpers.small_pool ()) entries in
  let rng = Rng.create 17 in
  for _ = 1 to 30 do
    let window = Helpers.random_rect rng in
    let result, _ = Query.enclosed_list tree window in
    let expected =
      Array.to_list entries
      |> List.filter (fun e -> Rect.contains window (Entry.rect e))
      |> List.map Entry.id
      |> List.sort Int.compare
    in
    Alcotest.(check (list int)) "enclosed" expected (Helpers.ids_of result)
  done

let test_covering () =
  let entries = Helpers.random_entries ~n:400 ~seed:18 in
  let tree = Prt_rtree.Bulk_str.load (Helpers.small_pool ()) entries in
  let rng = Rng.create 19 in
  for _ = 1 to 30 do
    let x = Rng.float rng 1.0 and y = Rng.float rng 1.0 in
    let window =
      Rect.make ~xmin:x ~ymin:y ~xmax:(Float.min 1.0 (x +. 0.01)) ~ymax:(Float.min 1.0 (y +. 0.01))
    in
    let result, _ = Query.covering_list tree window in
    let expected =
      Array.to_list entries
      |> List.filter (fun e -> Rect.contains (Entry.rect e) window)
      |> List.map Entry.id
      |> List.sort Int.compare
    in
    Alcotest.(check (list int)) "covering" expected (Helpers.ids_of result)
  done

let test_exists () =
  let entries = Helpers.random_entries ~n:200 ~seed:20 in
  let tree = Prt_prtree.Prtree.load (Helpers.small_pool ()) entries in
  let rng = Rng.create 21 in
  for _ = 1 to 40 do
    let window = Helpers.random_rect rng in
    Alcotest.(check bool) "exists agrees with brute force"
      (Helpers.brute_force entries window <> [])
      (Query.exists tree window)
  done

(* --- external STR --- *)

let test_ext_str () =
  List.iter
    (fun (n, mem_records) ->
      let entries = Helpers.random_entries ~n ~seed:(n + 22) in
      let pool = Helpers.small_pool () in
      let file = Entry.File.of_array (Prt_storage.Buffer_pool.pager pool) entries in
      let tree = Ext_load.load_str pool ~mem_records file in
      Prt_storage.Buffer_pool.flush pool;
      let s = Helpers.check_structure tree in
      Alcotest.(check int) "entries" n s.Rtree.entries;
      Helpers.check_tree_queries ~seed:(n * 5) tree entries)
    [ (0, 400); (40, 400); (900, 200); (900, 3000) ]

(* --- R* forced reinsertion --- *)

let test_rstar_reinsert_correct () =
  let pool = Helpers.small_pool () in
  let tree = Rtree.create_empty pool in
  let entries = Helpers.random_entries ~n:400 ~seed:23 in
  Array.iteri
    (fun i e ->
      Dynamic.insert ~config:Dynamic.rstar_config tree e;
      if (i + 1) mod 80 = 0 then ignore (Helpers.check_structure tree))
    entries;
  Alcotest.(check int) "count" 400 (Rtree.count tree);
  ignore (Helpers.check_structure tree);
  Helpers.check_tree_queries ~seed:24 tree entries

let test_rstar_reinsert_improves_or_matches () =
  (* On uniform data, R* with forced reinsertion should beat (or at
     least match) plain quadratic insertion — the R*-tree's original
     selling point. *)
  let entries = Datasets.uniform_points ~n:2000 ~seed:25 in
  let build config =
    let tree = Rtree.create_empty (Helpers.small_pool ()) in
    Array.iter (Dynamic.insert ~config tree) entries;
    ignore (Helpers.check_structure tree);
    tree
  in
  let plain = build Dynamic.default_config in
  let rstar = build Dynamic.rstar_config in
  let queries = Helpers.random_queries ~n:40 ~seed:27 in
  let leaves tree =
    Array.fold_left (fun acc q -> acc + (Rtree.query_count tree q).Rtree.leaf_visited) 0 queries
  in
  let p = leaves plain and r = leaves rstar in
  Alcotest.(check bool) (Printf.sprintf "rstar %d <= 1.1x plain %d" r p) true
    (float_of_int r <= 1.1 *. float_of_int p)

let test_rstar_reinsert_mixed_ops () =
  let pool = Helpers.small_pool () in
  let tree = Rtree.create_empty pool in
  let rng = Rng.create 28 in
  let model : (int, Entry.t) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  for _ = 1 to 500 do
    if Rng.float rng 1.0 < 0.6 || Hashtbl.length model = 0 then begin
      let e = Entry.make (Helpers.random_rect rng) !next_id in
      incr next_id;
      Hashtbl.replace model (Entry.id e) e;
      Dynamic.insert ~config:Dynamic.rstar_config tree e
    end
    else begin
      let ids = Hashtbl.fold (fun id _ acc -> id :: acc) model [] in
      let id = List.nth ids (Rng.int rng (List.length ids)) in
      let e = Hashtbl.find model id in
      Hashtbl.remove model id;
      Alcotest.(check bool) "delete" true (Dynamic.delete ~config:Dynamic.rstar_config tree e)
    end;
    Alcotest.(check int) "count" (Hashtbl.length model) (Rtree.count tree)
  done;
  ignore (Helpers.check_structure tree)

(* --- priority-size ablation knob --- *)

let test_priority_size_variants_all_correct () =
  let b = Prt_rtree.Node.capacity ~page_size:Helpers.small_page_size in
  let entries = Helpers.random_entries ~n:400 ~seed:29 in
  List.iter
    (fun priority_size ->
      let tree = Prt_prtree.Prtree.load ~priority_size (Helpers.small_pool ()) entries in
      ignore (Helpers.check_structure tree);
      Helpers.check_tree_queries ~seed:30 tree entries)
    [ 0; 1; b / 2; b ]

let test_priority_size_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Prt_prtree.Pseudo.build ~b:14 ~priority_size:15 (Helpers.random_entries ~n:50 ~seed:1));
       false
     with Invalid_argument _ -> true)

let test_flagpoles_separation () =
  (* The library-level claim behind the ablation: full priority leaves
     beat the plain kd-tree on extent-adversarial data. *)
  let entries = Datasets.flagpoles ~n:3000 ~seed:31 in
  let queries = Datasets.flagpole_queries ~count:20 ~seed:32 in
  let cost priority_size =
    let tree = Prt_prtree.Prtree.load ~priority_size (Helpers.small_pool ()) entries in
    Array.fold_left (fun acc q -> acc + (Rtree.query_count tree q).Rtree.leaf_visited) 0 queries
  in
  let b = Prt_rtree.Node.capacity ~page_size:Helpers.small_page_size in
  let full = cost b and none = cost 0 in
  Alcotest.(check bool) (Printf.sprintf "full %d < plain-kd %d" full none) true (full < none)

let suite =
  [
    Alcotest.test_case "knn: matches brute force" `Quick test_knn_matches_brute_force;
    Alcotest.test_case "knn: ordering and exhaustion" `Quick test_knn_ordering_and_exhaustion;
    Alcotest.test_case "knn: zero distance inside" `Quick test_knn_zero_inside;
    Alcotest.test_case "knn: within radius" `Quick test_knn_within;
    Alcotest.test_case "knn: empty tree" `Quick test_knn_empty_tree;
    Alcotest.test_case "knn: reads few nodes" `Quick test_knn_nodes_read_bounded;
    Alcotest.test_case "join: matches brute force" `Quick test_join_matches_brute_force;
    Alcotest.test_case "join: disjoint worlds read nothing" `Quick test_join_disjoint_worlds;
    Alcotest.test_case "join: windowed" `Quick test_join_with_window;
    Alcotest.test_case "join: self join" `Quick test_self_join;
    Alcotest.test_case "join: different heights" `Quick test_join_heights_differ;
    Alcotest.test_case "query: stabbing" `Quick test_stabbing;
    Alcotest.test_case "query: enclosed" `Quick test_enclosed;
    Alcotest.test_case "query: covering" `Quick test_covering;
    Alcotest.test_case "query: exists" `Quick test_exists;
    Alcotest.test_case "ext-str: correct" `Quick test_ext_str;
    Alcotest.test_case "rstar reinsert: correct" `Quick test_rstar_reinsert_correct;
    Alcotest.test_case "rstar reinsert: quality" `Quick test_rstar_reinsert_improves_or_matches;
    Alcotest.test_case "rstar reinsert: mixed ops" `Quick test_rstar_reinsert_mixed_ops;
    Alcotest.test_case "priority size: all variants correct" `Quick
      test_priority_size_variants_all_correct;
    Alcotest.test_case "priority size: out of range" `Quick test_priority_size_rejected;
    Alcotest.test_case "flagpoles: priority leaves matter" `Quick test_flagpoles_separation;
  ]
