(* Crash-consistency tests: the page integrity trailer (CRC-32C, epoch,
   LSN), zero-fill on page recycling, torn-tail handling, and the
   headline property — killing the process at EVERY physical page-write
   boundary of a build, insert or delete, then reopening, always yields
   exactly the pre-operation or the post-operation tree (never a
   hybrid), and any single flipped bit in a node page is reported as
   [Pager.Corrupt_page], never silently returned as a wrong answer. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Page = Prt_storage.Page
module Pager = Prt_storage.Pager
module Failpoint = Prt_storage.Failpoint
module Superblock = Prt_storage.Superblock
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Dynamic = Prt_rtree.Dynamic
module Index_file = Prt_rtree.Index_file
module Prtree = Prt_prtree.Prtree

let page_size = Helpers.small_page_size

let with_temp f =
  let path = Filename.temp_file "prt_crash" ".idx" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let with_temp2 f = with_temp (fun a -> with_temp (fun b -> f a b))

let copy_file src dst =
  let ic = open_in_bin src in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc data;
  close_out oc

let flip_bit path ~pos ~bit =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let b = Bytes.create 1 in
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  ignore (Unix.read fd b 0 1);
  Bytes.set_uint8 b 0 (Bytes.get_uint8 b 0 lxor (1 lsl bit));
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let everything = Rect.make ~xmin:(-1e9) ~ymin:(-1e9) ~xmax:1e9 ~ymax:1e9

(* All entry ids in the tree, sorted: the oracle-comparison fingerprint. *)
let ids tree =
  let out = ref [] in
  ignore (Rtree.query tree everything ~f:(fun e -> out := Entry.id e :: !out));
  List.sort Int.compare !out

(* --- the integrity trailer --- *)

let test_crc32c_vector () =
  (* The standard CRC-32C check value: "123456789" -> 0xE3069283. *)
  Alcotest.(check int)
    "castagnoli check value" 0xE3069283
    (Page.crc32c (Bytes.of_string "123456789") ~pos:0 ~len:9)

let test_stamp_check_roundtrip () =
  let p = Page.create page_size in
  Alcotest.(check bool) "all-zero is fresh" true (Page.check p = Page.Fresh);
  Page.set_f64 p 8 3.25;
  Alcotest.(check bool) "unstamped nonzero is torn" true (Page.check p = Page.Torn);
  Page.stamp p ~lsn:42;
  (match Page.check p with
  | Page.Valid { epoch; lsn } ->
      Alcotest.(check int) "epoch" Page.format_epoch epoch;
      Alcotest.(check int) "lsn" 42 lsn
  | other -> Alcotest.failf "expected valid, got %a" Page.pp_integrity other);
  Alcotest.(check int) "lsn accessor" 42 (Page.lsn p)

let test_check_detects_bit_flips () =
  let p = Page.create page_size in
  for i = 0 to Page.payload_size page_size - 1 do
    Page.set_u8 p i ((i * 7) land 0xff)
  done;
  Page.stamp p ~lsn:7;
  (* Flip single bits across payload and trailer alike: always torn. *)
  List.iter
    (fun (pos, bit) ->
      let byte = Page.get_u8 p pos in
      Page.set_u8 p pos (byte lxor (1 lsl bit));
      Alcotest.(check bool)
        (Printf.sprintf "bit %d of byte %d detected" bit pos)
        true
        (Page.check p = Page.Torn);
      Page.set_u8 p pos byte)
    [ (0, 0); (13, 5); (page_size / 2, 7); (page_size - 16, 1); (page_size - 1, 3) ];
  Alcotest.(check bool) "restored page valid again" true
    (match Page.check p with Page.Valid _ -> true | _ -> false)

let test_stale_epoch () =
  let p = Page.create page_size in
  Page.set_f64 p 0 1.5;
  Page.stamp p ~lsn:3;
  (* Rewrite the epoch field and re-checksum: a page written by some
     other (future) format version, structurally sound. *)
  Page.set_u16 p (page_size - 8) (Page.format_epoch + 1);
  let crc = Page.crc32c p ~pos:0 ~len:(page_size - 4) in
  Bytes.set_int32_le p (page_size - 4) (Int32.of_int crc);
  Alcotest.(check bool) "stale epoch detected" true
    (Page.check p = Page.Stale_epoch (Page.format_epoch + 1))

(* --- pager-level behaviour --- *)

let test_alloc_zero_fills_recycled () =
  let pager = Pager.create_memory ~page_size () in
  let id = Pager.alloc pager in
  let junk = Page.create page_size in
  for i = 0 to Page.payload_size page_size - 1 do
    Page.set_u8 junk i 0xAB
  done;
  Pager.write pager id junk;
  Pager.free pager id;
  let id' = Pager.alloc pager in
  Alcotest.(check int) "same page recycled" id id';
  let back = Pager.read pager id' in
  Alcotest.(check bool) "recycled page reads all-zero" true (Page.check back = Page.Fresh)

let test_corrupt_page_on_file_read () =
  with_temp (fun path ->
      let pager = Pager.create_file ~page_size path in
      let id0 = Pager.alloc pager in
      let id1 = Pager.alloc pager in
      let p = Page.create page_size in
      Page.set_f64 p 0 9.75;
      Pager.write pager id0 p;
      Pager.write pager id1 p;
      Pager.close pager;
      flip_bit path ~pos:((id1 * page_size) + 5) ~bit:2;
      let pager = Pager.open_file ~page_size path in
      Fun.protect
        ~finally:(fun () -> Pager.close pager)
        (fun () ->
          Alcotest.(check (float 0.0)) "intact page reads" 9.75 (Page.get_f64 (Pager.read pager id0) 0);
          Alcotest.(check bool) "corrupt page raises" true
            (try
               ignore (Pager.read pager id1);
               false
             with Pager.Corrupt_page _ -> true);
          Alcotest.(check int) "corrupt read counted" 1 (Pager.corrupt_reads pager)))

let test_partial_tail_reject_and_truncate () =
  with_temp (fun path ->
      let pager = Pager.create_file ~page_size path in
      let id = Pager.alloc pager in
      let p = Page.create page_size in
      Page.set_i32 p 0 77;
      Pager.write pager id p;
      Pager.close pager;
      (* A torn final write: half a page of garbage past the end. *)
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc (String.make (page_size / 2) 'x');
      close_out oc;
      Alcotest.(check bool) "default open rejects" true
        (try
           ignore (Pager.open_file ~page_size path);
           false
         with Invalid_argument _ -> true);
      let pager = Pager.open_file ~page_size ~partial_tail:`Truncate path in
      Fun.protect
        ~finally:(fun () -> Pager.close pager)
        (fun () ->
          Alcotest.(check int) "torn tail dropped" 1 (Pager.num_pages pager);
          Alcotest.(check int) "committed page intact" 77 (Page.get_i32 (Pager.read pager id) 0)))

(* --- crash-matrix sweeps --- *)

(* Sweep every kill point of the initial build: with a crash budget of
   [k] physical writes, [create] either completes (the budget outlived
   the build) or crashes; a crashed file must never open to a tree — the
   commit flip is the last write of [create], so the pre-op state is "no
   index yet" — and fsck must be able to salvage it. *)
let test_crash_matrix_build () =
  let entries = Helpers.random_entries ~n:250 ~seed:11 in
  with_temp2 (fun path out ->
      let k = ref 0 in
      let finished = ref false in
      while not !finished do
        if !k > 2000 then Alcotest.fail "build crash sweep did not terminate";
        (try Sys.remove path with Sys_error _ -> ());
        let fp = Failpoint.create (Failpoint.crash_after !k) in
        (match
           Index_file.create ~page_size ~crash:fp path ~build:(fun pool ->
               Prtree.load pool entries)
         with
        | idx ->
            Index_file.close idx;
            finished := true
        | exception Failpoint.Simulated_crash _ ->
            Alcotest.(check int) "crash counted" 1 (Failpoint.injected fp).Failpoint.crashes;
            (* The torn build must be recognized as "no index", not
               served as a partial tree. *)
            (match Index_file.open_ ~page_size path with
            | idx ->
                Alcotest.failf "crashed build at k=%d opened to a tree of %d entries" !k
                  (Rtree.count (Index_file.tree idx))
            | exception (Failure _ | Invalid_argument _) -> ()));
        incr k
      done;
      (* The completed file answers queries; and fsck of a torn build
         (re-crash one early kill point) can salvage into a fresh index. *)
      let idx = Index_file.open_ ~page_size path in
      Alcotest.(check int) "entries" 250 (Rtree.count (Index_file.tree idx));
      Index_file.close idx;
      Sys.remove path;
      let fp = Failpoint.create (Failpoint.crash_after (!k / 2)) in
      (try
         ignore
           (Index_file.create ~page_size ~crash:fp path ~build:(fun pool ->
                Prtree.load pool entries))
       with Failpoint.Simulated_crash _ -> ());
      let report =
        Index_file.fsck ~page_size ~rebuild:(out, fun pool es -> Prtree.load pool es) path
      in
      match report.Index_file.fsck_salvaged with
      | None -> Alcotest.fail "fsck --rebuild salvaged nothing"
      | Some (_, rebuilt) ->
          let idx = Index_file.open_ ~page_size rebuilt in
          Alcotest.(check bool) "salvaged index validates" true
            (ignore (Rtree.validate (Index_file.tree idx));
             true);
          Index_file.close idx)

(* Sweep every kill point of one mutation: reopening after the crash
   must yield exactly the pre-op or the post-op id set, and fsck of the
   crashed file must find a sound tree. *)
let sweep_mutation ~name ~mutate ~pre ~post pristine =
  with_temp (fun work ->
      let k = ref 0 in
      let finished = ref false in
      let outcomes = ref (0, 0) in
      while not !finished do
        if !k > 2000 then Alcotest.fail (name ^ " crash sweep did not terminate");
        copy_file pristine work;
        let fp = Failpoint.create (Failpoint.crash_after !k) in
        let idx = Index_file.open_ ~page_size ~crash:fp work in
        (match Index_file.update idx mutate with
        | _ ->
            Index_file.close idx;
            finished := true
        | exception Failpoint.Simulated_crash _ ->
            let report = Index_file.fsck ~page_size work in
            Alcotest.(check bool)
              (Printf.sprintf "%s k=%d: fsck finds a sound tree" name !k)
              true report.Index_file.fsck_tree_ok;
            let idx = Index_file.open_ ~page_size work in
            let got = ids (Index_file.tree idx) in
            Index_file.close idx;
            let rolled_back, committed = !outcomes in
            if got = pre then outcomes := (rolled_back + 1, committed)
            else if got = post then outcomes := (rolled_back, committed + 1)
            else
              Alcotest.failf "%s crash at k=%d reopened to a hybrid state (%d entries)" name !k
                (List.length got));
        incr k
      done;
      (* The surviving run committed: the work file is post-op. *)
      let idx = Index_file.open_ ~page_size work in
      Alcotest.(check bool) (name ^ ": surviving run is post-op") true
        (ids (Index_file.tree idx) = post);
      Index_file.close idx;
      let rolled_back, committed = !outcomes in
      Alcotest.(check bool)
        (Printf.sprintf "%s: some crashes rolled back (%d pre / %d post over %d kill points)" name
           rolled_back committed !k)
        true (rolled_back > 0))

let make_pristine path entries =
  let idx = Index_file.create ~page_size path ~build:(fun pool -> Prtree.load pool entries) in
  Index_file.close idx

let test_crash_matrix_insert () =
  let entries = Helpers.random_entries ~n:250 ~seed:5 in
  with_temp (fun pristine ->
      make_pristine pristine entries;
      let fresh = Entry.make (Rect.make ~xmin:0.4 ~ymin:0.4 ~xmax:0.45 ~ymax:0.45) 100_000 in
      let pre = List.init 250 Fun.id in
      let post = List.sort Int.compare (100_000 :: pre) in
      sweep_mutation ~name:"insert" ~mutate:(fun tree -> Dynamic.insert tree fresh) ~pre ~post
        pristine)

let test_crash_matrix_delete () =
  let entries = Helpers.random_entries ~n:250 ~seed:6 in
  with_temp (fun pristine ->
      make_pristine pristine entries;
      let victim = entries.(137) in
      let pre = List.init 250 Fun.id in
      let post = List.filter (fun i -> i <> 137) pre in
      sweep_mutation ~name:"delete"
        ~mutate:(fun tree -> ignore (Dynamic.delete tree victim))
        ~pre ~post pristine)

(* --- targeted superblock damage --- *)

let newest_slot path =
  let pager = Pager.open_file ~page_size path in
  let slots = Superblock.inspect pager in
  Pager.close pager;
  let commit_of = function Superblock.Slot_valid st -> st.Superblock.commit | _ -> -1 in
  if commit_of slots.(0) >= commit_of slots.(1) then 0 else 1

let insert_777 path =
  let idx = Index_file.open_ ~page_size path in
  Index_file.update idx (fun tree ->
      Dynamic.insert tree (Entry.make (Rect.make ~xmin:0.1 ~ymin:0.1 ~xmax:0.2 ~ymax:0.2) 777));
  Index_file.close idx

let test_newest_slot_damage_rolls_back () =
  let entries = Helpers.random_entries ~n:200 ~seed:8 in
  with_temp (fun path ->
      make_pristine path entries;
      insert_777 path;
      (* Tear the newest slot — a torn commit write.  The twin (which
         still names the transaction's journal) takes over: recovery
         replays the journal back to the pre-insert tree and persists it
         as a fresh commit, rewriting the torn slot in the process. *)
      let newest = newest_slot path in
      flip_bit path ~pos:((newest * page_size) + 40) ~bit:0;
      let idx = Index_file.open_ ~page_size path in
      Alcotest.(check bool) "journal replayed" true
        ((Index_file.recovery idx).Superblock.rec_journal_pages > 0);
      Alcotest.(check int) "rolled back to twin" 200 (Rtree.count (Index_file.tree idx));
      Index_file.close idx;
      (* And the rewritten slot is valid again: reopening is clean. *)
      let idx = Index_file.open_ ~page_size path in
      Alcotest.(check int) "stable after repair" 200 (Rtree.count (Index_file.tree idx));
      Index_file.close idx)

let test_older_slot_damage_is_repaired () =
  let entries = Helpers.random_entries ~n:200 ~seed:9 in
  with_temp (fun path ->
      make_pristine path entries;
      insert_777 path;
      (* Tear the OLDER slot: the committed (post-insert) state stays
         live, and open repairs the damaged twin so a later torn commit
         can never leave zero valid slots. *)
      let older = 1 - newest_slot path in
      flip_bit path ~pos:((older * page_size) + 40) ~bit:0;
      let idx = Index_file.open_ ~page_size path in
      Alcotest.(check bool) "twin repaired" true
        (Index_file.recovery idx).Superblock.rec_slot_repaired;
      Alcotest.(check int) "committed state kept" 201 (Rtree.count (Index_file.tree idx));
      Index_file.close idx;
      let pager = Pager.open_file ~page_size path in
      let both_valid =
        Array.for_all
          (function Superblock.Slot_valid _ -> true | _ -> false)
          (Superblock.inspect pager)
      in
      Pager.close pager;
      Alcotest.(check bool) "both slots valid after repair" true both_valid)

(* --- single-bit corruption never yields a silent wrong answer --- *)

let test_bit_flip_never_wrong_answer () =
  let entries = Helpers.random_entries ~n:200 ~seed:13 in
  with_temp (fun path ->
      make_pristine path entries;
      let oracle = List.init 200 Fun.id in
      let bytes = (Unix.stat path).Unix.st_size in
      let node_bytes = bytes - (Superblock.pages * page_size) in
      let rng = Rng.create 99 in
      let corrupt_detected = ref 0 in
      for _ = 1 to 60 do
        let pos = (Superblock.pages * page_size) + Rng.int rng node_bytes in
        let bit = Rng.int rng 8 in
        flip_bit path ~pos ~bit;
        (match Index_file.open_ ~page_size path with
        | idx -> (
            match ids (Index_file.tree idx) with
            | got ->
                Index_file.close idx;
                if got <> oracle then
                  Alcotest.failf "bit %d of byte %d flipped: silent wrong answer" bit pos
            | exception Pager.Corrupt_page _ ->
                incr corrupt_detected;
                Pager.close (Index_file.pager idx))
        | exception Pager.Corrupt_page _ -> incr corrupt_detected);
        flip_bit path ~pos ~bit
      done;
      Alcotest.(check bool)
        (Printf.sprintf "checksum caught %d/60 corruptions" !corrupt_detected)
        true (!corrupt_detected > 0))

(* --- the qcheck property: random op, random kill point --- *)

let crash_property =
  QCheck.Test.make ~name:"random kill point: reopen is pre-op or post-op" ~count:30
    QCheck.(triple (int_bound 1000) (int_bound 120) bool)
    (fun (seed, k, is_insert) ->
      let n = 120 + (seed mod 80) in
      let entries = Helpers.random_entries ~n ~seed in
      with_temp (fun path ->
          make_pristine path entries;
          let pre = List.init n Fun.id in
          let mutate, post =
            if is_insert then
              ( (fun tree ->
                  Dynamic.insert tree
                    (Entry.make (Rect.make ~xmin:0.3 ~ymin:0.3 ~xmax:0.35 ~ymax:0.35) 100_000)),
                List.sort Int.compare (100_000 :: pre) )
            else
              let victim = seed mod n in
              ( (fun tree -> ignore (Dynamic.delete tree entries.(victim))),
                List.filter (fun i -> i <> victim) pre )
          in
          let fp = Failpoint.create (Failpoint.crash_after k) in
          let idx = Index_file.open_ ~page_size ~crash:fp path in
          let crashed =
            match Index_file.update idx mutate with
            | _ ->
                Index_file.close idx;
                false
            | exception Failpoint.Simulated_crash _ -> true
          in
          let idx = Index_file.open_ ~page_size path in
          let got = ids (Index_file.tree idx) in
          Index_file.close idx;
          if crashed then got = pre || got = post else got = post))

let suite =
  [
    Alcotest.test_case "crc32c: check value" `Quick test_crc32c_vector;
    Alcotest.test_case "trailer: stamp/check roundtrip" `Quick test_stamp_check_roundtrip;
    Alcotest.test_case "trailer: detects bit flips" `Quick test_check_detects_bit_flips;
    Alcotest.test_case "trailer: stale epoch" `Quick test_stale_epoch;
    Alcotest.test_case "pager: recycled pages zero-filled" `Quick test_alloc_zero_fills_recycled;
    Alcotest.test_case "pager: corrupt page on file read" `Quick test_corrupt_page_on_file_read;
    Alcotest.test_case "pager: torn final write" `Quick test_partial_tail_reject_and_truncate;
    Alcotest.test_case "crash matrix: build" `Quick test_crash_matrix_build;
    Alcotest.test_case "crash matrix: insert" `Quick test_crash_matrix_insert;
    Alcotest.test_case "crash matrix: delete" `Quick test_crash_matrix_delete;
    Alcotest.test_case "superblock: newest-slot damage rolls back" `Quick
      test_newest_slot_damage_rolls_back;
    Alcotest.test_case "superblock: older-slot damage repaired" `Quick
      test_older_slot_damage_is_repaired;
    Alcotest.test_case "corruption: no silent wrong answers" `Quick
      test_bit_flip_never_wrong_answer;
    Helpers.qcheck_case crash_property;
  ]
