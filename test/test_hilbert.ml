(* Hilbert curve tests: bijectivity, the defining locality property
   (consecutive curve positions are grid neighbours), and agreement of
   quantization edges. *)

module H2 = Prt_hilbert.Hilbert2d
module Hnd = Prt_hilbert.Hilbert_nd

(* --- 2-D --- *)

let test_2d_exhaustive_bijection () =
  (* Order 4: 256 cells; index must be a bijection onto 0..255. *)
  let order = 4 in
  let n = 1 lsl order in
  let seen = Array.make (n * n) false in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      let d = H2.index ~order x y in
      Alcotest.(check bool) "in range" true (d >= 0 && d < n * n);
      Alcotest.(check bool) "not seen" false seen.(d);
      seen.(d) <- true;
      let x', y' = H2.coords ~order d in
      Alcotest.(check (pair int int)) "roundtrip" (x, y) (x', y')
    done
  done

let test_2d_locality () =
  (* Consecutive indices are adjacent cells (Manhattan distance 1). *)
  let order = 5 in
  let n = 1 lsl order in
  for d = 0 to (n * n) - 2 do
    let x0, y0 = H2.coords ~order d in
    let x1, y1 = H2.coords ~order (d + 1) in
    Alcotest.(check int) "adjacent" 1 (abs (x1 - x0) + abs (y1 - y0))
  done

let prop_2d_roundtrip_large_order =
  QCheck.Test.make ~name:"2d roundtrip at order 16" ~count:500
    QCheck.(pair (int_range 0 65535) (int_range 0 65535))
    (fun (x, y) ->
      let d = H2.index ~order:16 x y in
      H2.coords ~order:16 d = (x, y))

let test_2d_bounds () =
  Alcotest.(check bool) "coordinate out of range" true
    (try
       ignore (H2.index ~order:4 16 0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative coordinate" true
    (try
       ignore (H2.index ~order:4 (-1) 0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "order too large" true
    (try
       ignore (H2.index ~order:40 0 0);
       false
     with Invalid_argument _ -> true)

let test_2d_origin () = Alcotest.(check int) "origin is curve start" 0 (H2.index ~order:8 0 0)

let test_quantize () =
  Alcotest.(check int) "lo" 0 (H2.quantize ~order:4 ~lo:0.0 ~hi:1.0 0.0);
  Alcotest.(check int) "hi clamps to last cell" 15 (H2.quantize ~order:4 ~lo:0.0 ~hi:1.0 1.0);
  Alcotest.(check int) "above clamps" 15 (H2.quantize ~order:4 ~lo:0.0 ~hi:1.0 2.0);
  Alcotest.(check int) "below clamps" 0 (H2.quantize ~order:4 ~lo:0.0 ~hi:1.0 (-1.0));
  Alcotest.(check int) "midpoint" 8 (H2.quantize ~order:4 ~lo:0.0 ~hi:1.0 0.5)

(* --- n-D --- *)

let test_nd_exhaustive_bijection_3d () =
  let order = 2 and dims = 3 in
  let n = 1 lsl order in
  let total = n * n * n in
  let seen = Array.make total false in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      for z = 0 to n - 1 do
        let d = Hnd.index ~order [| x; y; z |] in
        Alcotest.(check bool) "in range" true (d >= 0 && d < total);
        Alcotest.(check bool) "not seen" false seen.(d);
        seen.(d) <- true;
        Alcotest.(check (array int)) "roundtrip" [| x; y; z |] (Hnd.coords ~order ~dims d)
      done
    done
  done

let test_nd_locality_4d () =
  (* The defining Hilbert property in 4-D: curve neighbours are grid
     neighbours. *)
  let order = 3 and dims = 4 in
  let total = 1 lsl (order * dims) in
  let prev = ref (Hnd.coords ~order ~dims 0) in
  for d = 1 to total - 1 do
    let cur = Hnd.coords ~order ~dims d in
    let dist = ref 0 in
    Array.iteri (fun i v -> dist := !dist + abs (v - !prev.(i))) cur;
    Alcotest.(check int) "adjacent" 1 !dist;
    prev := cur
  done

let prop_nd_roundtrip_4d =
  QCheck.Test.make ~name:"4d roundtrip at order 15" ~count:500
    QCheck.(
      quad (int_range 0 32767) (int_range 0 32767) (int_range 0 32767) (int_range 0 32767))
    (fun (a, b, c, d) ->
      let coords = [| a; b; c; d |] in
      Hnd.coords ~order:15 ~dims:4 (Hnd.index ~order:15 coords) = coords)

let prop_nd_matches_dims_2 =
  (* The 2-D specialization of the n-D algorithm must be a bijection with
     the same locality, though not necessarily the same orientation as
     Hilbert2d. *)
  QCheck.Test.make ~name:"nd dims=2 roundtrip" ~count:300
    QCheck.(pair (int_range 0 255) (int_range 0 255))
    (fun (x, y) ->
      let coords = [| x; y |] in
      Hnd.coords ~order:8 ~dims:2 (Hnd.index ~order:8 coords) = coords)

let test_nd_bounds () =
  Alcotest.(check bool) "too many bits" true
    (try
       ignore (Hnd.index ~order:16 [| 0; 0; 0; 0 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "coordinate out of range" true
    (try
       ignore (Hnd.index ~order:4 [| 16; 0 |]);
       false
     with Invalid_argument _ -> true)

let test_nd_origin () =
  Alcotest.(check int) "origin is curve start" 0 (Hnd.index ~order:5 [| 0; 0; 0; 0 |])

let suite =
  [
    Alcotest.test_case "2d: exhaustive bijection" `Quick test_2d_exhaustive_bijection;
    Alcotest.test_case "2d: locality" `Quick test_2d_locality;
    Helpers.qcheck_case prop_2d_roundtrip_large_order;
    Alcotest.test_case "2d: bounds" `Quick test_2d_bounds;
    Alcotest.test_case "2d: origin" `Quick test_2d_origin;
    Alcotest.test_case "2d: quantize" `Quick test_quantize;
    Alcotest.test_case "nd: exhaustive bijection 3d" `Quick test_nd_exhaustive_bijection_3d;
    Alcotest.test_case "nd: locality 4d" `Quick test_nd_locality_4d;
    Helpers.qcheck_case prop_nd_roundtrip_4d;
    Helpers.qcheck_case prop_nd_matches_dims_2;
    Alcotest.test_case "nd: bounds" `Quick test_nd_bounds;
    Alcotest.test_case "nd: origin" `Quick test_nd_origin;
  ]
