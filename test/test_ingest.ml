(* The persistent LSM ingestion subsystem: durability of acknowledged
   inserts, logarithmic-method slot discipline over on-disk components,
   tombstones, WAL replay, orphan reclamation, the kill-point crash
   matrix (reopen after a simulated death at EVERY fsops / page-write
   kill point must yield exactly the acknowledged-operation set, give
   or take the single in-flight operation), the mid-merge
   abort -> reopen -> retry lifecycle, background merges, and a qcheck
   differential against an in-memory oracle under random
   insert/delete/query/flush/reopen/fault schedules. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Pager = Prt_storage.Pager
module Failpoint = Prt_storage.Failpoint
module Retry = Prt_storage.Retry
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Lsm = Prt_logmethod.Lsm

let everything = Rect.make ~xmin:(-1e9) ~ymin:(-1e9) ~xmax:1e9 ~ymax:1e9

let rm_rf dir =
  if Sys.file_exists dir then begin
    if Sys.is_directory dir then begin
      Array.iter
        (fun n ->
          try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
    else try Sys.remove dir with Sys_error _ -> ()
  end

let with_temp_dir f =
  let dir = Filename.temp_file "prt_ingest" "" in
  Sys.remove dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let live_ids t = Helpers.ids_of (fst (Lsm.query_list t everything))

let check_oracle ?(msg = "query matches oracle") t entries window =
  let result, stats = Lsm.query_list t window in
  Alcotest.(check (list int))
    msg
    (Helpers.brute_force entries window)
    (Helpers.ids_of result);
  Alcotest.(check bool) (msg ^ " (complete)") true (Rtree.complete stats)

(* Slot discipline: level i holds at most capacity * 2^i entries, one
   component per level. *)
let check_slots ~buffer_capacity t =
  let comps = Lsm.components t in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (level, count) ->
      Alcotest.(check bool)
        (Printf.sprintf "level %d occupied once" level)
        false (Hashtbl.mem seen level);
      Hashtbl.replace seen level ();
      Alcotest.(check bool)
        (Printf.sprintf "level %d within capacity (%d entries)" level count)
        true
        (count <= buffer_capacity * (1 lsl level) && count > 0))
    comps

(* --- basics --- *)

let test_basic () =
  with_temp_dir (fun dir ->
      let entries = Helpers.random_entries ~n:100 ~seed:11 in
      let t = Lsm.create dir in
      Array.iter (Lsm.insert t) entries;
      Alcotest.(check int) "count" 100 (Lsm.count t);
      Alcotest.(check int) "all buffered" 100 (Lsm.buffer_size t);
      Alcotest.(check (list (pair int int))) "no components yet" [] (Lsm.components t);
      check_oracle t entries everything;
      Array.iter
        (fun q -> check_oracle t entries q)
        (Helpers.random_queries ~n:20 ~seed:12);
      Lsm.flush t;
      Alcotest.(check int) "count after flush" 100 (Lsm.count t);
      Alcotest.(check int) "buffer drained" 0 (Lsm.buffer_size t);
      Alcotest.(check int) "one component" 1 (List.length (Lsm.components t));
      check_oracle t entries everything;
      Lsm.validate t;
      Lsm.close t)

let test_merge_levels () =
  with_temp_dir (fun dir ->
      let n = 100 in
      let entries = Helpers.random_entries ~n ~seed:21 in
      let t =
        Lsm.create ~buffer_capacity:8 ~page_size:Helpers.small_page_size dir
      in
      Array.iteri
        (fun i e ->
          Lsm.insert t e;
          if i mod 17 = 0 then
            check_oracle ~msg:"mid-ingest query" t
              (Array.sub entries 0 (i + 1))
              everything)
        entries;
      Alcotest.(check int) "count" n (Lsm.count t);
      check_slots ~buffer_capacity:8 t;
      check_oracle t entries everything;
      Array.iter
        (fun q -> check_oracle t entries q)
        (Helpers.random_queries ~n:20 ~seed:22);
      Lsm.validate t;
      Lsm.close t;
      (* Reopen: components and WAL replay reconstruct the same set. *)
      let t = Lsm.open_ ~buffer_capacity:8 ~page_size:Helpers.small_page_size dir in
      Alcotest.(check int) "count after reopen" n (Lsm.count t);
      check_oracle t entries everything;
      Lsm.validate t;
      Lsm.close t)

let test_query_batch () =
  with_temp_dir (fun dir ->
      let entries = Helpers.random_entries ~n:120 ~seed:31 in
      let t =
        Lsm.create ~buffer_capacity:16 ~page_size:Helpers.small_page_size dir
      in
      Array.iter (Lsm.insert t) entries;
      let windows = Helpers.random_queries ~n:12 ~seed:32 in
      let out = Lsm.query_batch ~jobs:2 t windows in
      Array.iteri
        (fun i (result, stats) ->
          Alcotest.(check (list int))
            (Printf.sprintf "batch slot %d" i)
            (Helpers.brute_force entries windows.(i))
            (Helpers.ids_of result);
          Alcotest.(check bool) "complete" true (Rtree.complete stats))
        out;
      Lsm.close t)

(* --- durability --- *)

let test_reopen_replay () =
  with_temp_dir (fun dir ->
      let entries = Helpers.random_entries ~n:50 ~seed:41 in
      let t = Lsm.create dir in
      Array.iter (Lsm.insert t) entries;
      Lsm.close t;
      let t = Lsm.open_ dir in
      Alcotest.(check int) "replayed" 50 (Lsm.stats t).Lsm.s_replayed;
      Alcotest.(check int) "count" 50 (Lsm.count t);
      check_oracle t entries everything;
      (* Delete a few, close, reopen: the delete records replay too. *)
      for i = 0 to 4 do
        Alcotest.(check bool) "delete acked" true (Lsm.delete t entries.(i))
      done;
      Lsm.close t;
      let t = Lsm.open_ dir in
      Alcotest.(check int) "count after deletes" 45 (Lsm.count t);
      let expected = Array.sub entries 5 45 in
      check_oracle t expected everything;
      Lsm.close t)

let test_abandoned_handle () =
  (* No close at all — the process "died" after the last acknowledged
     insert.  wal_sync:`Always means acknowledged = durable. *)
  with_temp_dir (fun dir ->
      let entries = Helpers.random_entries ~n:30 ~seed:51 in
      let t = Lsm.create ~wal_sync:`Always dir in
      Array.iter (Lsm.insert t) entries;
      let t2 = Lsm.open_ dir in
      Alcotest.(check int) "all acked present" 30 (Lsm.count t2);
      check_oracle t2 entries everything;
      Lsm.close t2;
      Lsm.close t)

let test_torn_wal_tail () =
  with_temp_dir (fun dir ->
      let entries = Helpers.random_entries ~n:10 ~seed:61 in
      let t = Lsm.create dir in
      Array.iter (Lsm.insert t) entries;
      Lsm.close t;
      (* Corrupt the active segment's tail two ways: a garbage length
         field, then (separately) a half-written frame. *)
      let wal =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun n ->
               String.length n > 4 && String.sub n 0 4 = "wal-")
        |> List.sort compare |> List.rev |> List.hd
      in
      let path = Filename.concat dir wal in
      let append s =
        let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
        output_string oc s;
        close_out oc
      in
      append "\xff\xff\xff\xff torn garbage";
      let t = Lsm.open_ dir in
      Alcotest.(check int) "torn tail dropped" 10 (Lsm.count t);
      check_oracle t entries everything;
      Lsm.close t;
      (* The reopen rotated/truncated; tear the newest segment again
         with a plausible frame prefix (valid length, missing payload). *)
      let wal2 =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun n ->
               String.length n > 4 && String.sub n 0 4 = "wal-")
        |> List.sort compare |> List.rev |> List.hd
      in
      let b = Bytes.create 8 in
      Bytes.set_int32_le b 0 37l;
      Bytes.set_int32_le b 4 0xDEADl;
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644 (Filename.concat dir wal2)
      in
      output_bytes oc b;
      output_string oc "abc";
      close_out oc;
      let t = Lsm.open_ dir in
      Alcotest.(check int) "half frame dropped" 10 (Lsm.count t);
      check_oracle t entries everything;
      Lsm.close t)

(* --- deletes and tombstones --- *)

let test_deletes_and_compact () =
  with_temp_dir (fun dir ->
      let entries = Helpers.random_entries ~n:20 ~seed:71 in
      let t =
        Lsm.create ~buffer_capacity:4 ~page_size:Helpers.small_page_size dir
      in
      Array.iter (Lsm.insert t) entries;
      (* entries.(3) merged into a component by now; the newest may
         still be buffered. *)
      Alcotest.(check bool) "delete stored" true (Lsm.delete t entries.(3));
      Alcotest.(check bool) "delete twice" false (Lsm.delete t entries.(3));
      Alcotest.(check bool) "delete buffered" true (Lsm.delete t entries.(19));
      Alcotest.(check bool)
        "delete absent" false
        (Lsm.delete t (Entry.make (Rect.make ~xmin:5.0 ~ymin:5.0 ~xmax:6.0 ~ymax:6.0) 999));
      Alcotest.(check int) "count" 18 (Lsm.count t);
      let expected =
        Array.of_list
          (List.filteri (fun i _ -> i <> 3 && i <> 19) (Array.to_list entries))
      in
      check_oracle t expected everything;
      Alcotest.(check bool)
        "tombstone recorded" true
        ((Lsm.stats t).Lsm.s_tombstones >= 1);
      (* Compaction resolves every reachable tombstone into one
         component. *)
      Lsm.compact t;
      Alcotest.(check int) "tombstones resolved" 0 (Lsm.stats t).Lsm.s_tombstones;
      Alcotest.(check int) "single component" 1 (List.length (Lsm.components t));
      check_oracle t expected everything;
      Lsm.validate t;
      Lsm.close t;
      let t = Lsm.open_ ~buffer_capacity:4 ~page_size:Helpers.small_page_size dir in
      Alcotest.(check int) "count after reopen" 18 (Lsm.count t);
      check_oracle t expected everything;
      Lsm.close t)

(* Re-inserting a tombstoned id would be silently lost (hidden by the
   id-keyed tombstone, dropped at the next merge while the dead stored
   copy resurrects), so it must be rejected until a merge resolves the
   tombstone — after which the id is insertable again, durably. *)
let test_tombstone_reinsert () =
  with_temp_dir (fun dir ->
      let entries = Helpers.random_entries ~n:12 ~seed:97 in
      let t =
        Lsm.create ~buffer_capacity:4 ~page_size:Helpers.small_page_size dir
      in
      Array.iter (Lsm.insert t) entries;
      Lsm.flush t;
      let victim = entries.(5) in
      Alcotest.(check bool) "delete stored" true (Lsm.delete t victim);
      Alcotest.check_raises "reinsert under live tombstone rejected"
        (Invalid_argument "Lsm.insert: id has an unresolved tombstone")
        (fun () -> Lsm.insert t victim);
      (* Nothing was acknowledged by the rejected insert: the entry
         stays deleted, across a reopen too. *)
      let expected =
        Array.of_list
          (List.filteri (fun i _ -> i <> 5) (Array.to_list entries))
      in
      check_oracle ~msg:"rejected insert left no trace" t expected everything;
      Lsm.close t;
      let t = Lsm.open_ ~buffer_capacity:4 ~page_size:Helpers.small_page_size dir in
      check_oracle ~msg:"still deleted after reopen" t expected everything;
      (* Compaction resolves the tombstone; the id is insertable again
         and the new rectangle (not the dead one) is what queries see. *)
      Lsm.compact t;
      Alcotest.(check int) "tombstone resolved" 0 (Lsm.stats t).Lsm.s_tombstones;
      let reborn =
        Entry.make
          (Rect.make ~xmin:400.0 ~ymin:400.0 ~xmax:401.0 ~ymax:401.0)
          (Entry.id victim)
      in
      Lsm.insert t reborn;
      let expected = Array.append expected [| reborn |] in
      Alcotest.(check int) "count after rebirth" 12 (Lsm.count t);
      check_oracle ~msg:"reborn entry visible" t expected everything;
      let hits, _ =
        Lsm.query_list t
          (Rect.make ~xmin:399.0 ~ymin:399.0 ~xmax:402.0 ~ymax:402.0)
      in
      Alcotest.(check bool)
        "reborn rect queryable" true
        (List.exists (fun e -> Entry.equal e reborn) hits);
      Lsm.flush t;
      Lsm.close t;
      let t = Lsm.open_ ~buffer_capacity:4 ~page_size:Helpers.small_page_size dir in
      check_oracle ~msg:"rebirth durable" t expected everything;
      Lsm.validate t;
      Lsm.close t)

(* --- orphan reclamation --- *)

let test_orphan_reclaim () =
  with_temp_dir (fun dir ->
      let entries = Helpers.random_entries ~n:20 ~seed:81 in
      let t =
        Lsm.create ~buffer_capacity:4 ~page_size:Helpers.small_page_size dir
      in
      Array.iter (Lsm.insert t) entries;
      Lsm.flush t;
      Lsm.close t;
      (* Litter the directory the way interrupted merges would. *)
      let plant name content =
        let oc = open_out_bin (Filename.concat dir name) in
        output_string oc content;
        close_out oc
      in
      plant "c009999.idx" "half-built component";
      plant "c000777.idx.tmp" "tmp leftover";
      plant "MANIFEST-000099.tmp" "tmp manifest";
      plant "wal-000000.log" "stale segment below the floor";
      let t = Lsm.open_ ~buffer_capacity:4 ~page_size:Helpers.small_page_size dir in
      Alcotest.(check int)
        "orphans reclaimed" 4
        (Lsm.stats t).Lsm.s_orphans_reclaimed;
      List.iter
        (fun name ->
          Alcotest.(check bool)
            (name ^ " deleted") false
            (Sys.file_exists (Filename.concat dir name)))
        [ "c009999.idx"; "c000777.idx.tmp"; "MANIFEST-000099.tmp"; "wal-000000.log" ];
      Alcotest.(check int) "data intact" 20 (Lsm.count t);
      check_oracle t entries everything;
      (* A second open finds nothing left to reclaim. *)
      Lsm.close t;
      let t = Lsm.open_ ~buffer_capacity:4 ~page_size:Helpers.small_page_size dir in
      Alcotest.(check int) "second open clean" 0 (Lsm.stats t).Lsm.s_orphans_reclaimed;
      Lsm.close t)

(* --- the kill-point crash matrix --- *)

(* The scripted workload: 28 inserts with two deletes in the middle and
   a flush at the end, over a buffer of 6 on 512-byte pages — several
   WAL rotations and component merges, so kill points land on WAL
   appends and fsyncs, component page writes, manifest swaps and
   post-merge cleanup alike. *)
type op = I of Entry.t | D of Entry.t | F

let crash_script entries =
  let ops = ref [] in
  Array.iteri
    (fun i e ->
      ops := I e :: !ops;
      if i = 9 then ops := D entries.(2) :: !ops;
      if i = 19 then ops := D entries.(5) :: !ops)
    entries;
  List.rev (F :: !ops)

let apply_op t = function
  | I e -> Lsm.insert t e
  | D e -> ignore (Lsm.delete t e)
  | F -> Lsm.flush t

let expected_ids ops =
  let tbl = Hashtbl.create 64 in
  List.iter
    (function
      | I e -> Hashtbl.replace tbl (Entry.id e) ()
      | D e -> Hashtbl.remove tbl (Entry.id e)
      | F -> ())
    ops;
  List.sort Int.compare (Hashtbl.fold (fun id () acc -> id :: acc) tbl [])

let test_crash_matrix () =
  let entries = Helpers.random_entries ~n:28 ~seed:91 in
  let script = crash_script entries in
  let budget = ref 0 in
  let finished = ref false in
  while not !finished do
    with_temp_dir (fun dir ->
        let crash = Failpoint.create (Failpoint.crash_after !budget) in
        let t =
          Lsm.create ~buffer_capacity:6 ~page_size:Helpers.small_page_size
            ~crash dir
        in
        let acked = ref [] in
        let pending = ref None in
        let crashed =
          match
            List.iter
              (fun op ->
                pending := Some op;
                apply_op t op;
                acked := op :: !acked;
                pending := None)
              script
          with
          | () ->
              finished := true;
              Lsm.close t;
              false
          | exception Failpoint.Simulated_crash _ -> true
        in
        (* The process died at kill point [budget].  Reopen cleanly:
           the store must hold exactly the acknowledged operations,
           give or take the single in-flight one (logged but unacked). *)
        let reopened =
          Lsm.open_ ~buffer_capacity:6 ~page_size:Helpers.small_page_size dir
        in
        let got = live_ids reopened in
        let want_acked = expected_ids (List.rev !acked) in
        let want_pending =
          match !pending with
          | None -> want_acked
          | Some op -> expected_ids (List.rev (op :: !acked))
        in
        if got <> want_acked && got <> want_pending then
          Alcotest.failf
            "kill point %d: reopened to %d ids, want %d acked (or %d with the in-flight op)"
            !budget (List.length got) (List.length want_acked)
            (List.length want_pending);
        Lsm.validate reopened;
        Lsm.close reopened;
        (* Recovery is idempotent: a second reopen finds no orphans and
           the same answer. *)
        let again =
          Lsm.open_ ~buffer_capacity:6 ~page_size:Helpers.small_page_size dir
        in
        Alcotest.(check int)
          (Printf.sprintf "kill point %d: second open clean" !budget)
          0
          (Lsm.stats again).Lsm.s_orphans_reclaimed;
        Alcotest.(check (list int))
          (Printf.sprintf "kill point %d: recovery idempotent" !budget)
          got (live_ids again);
        Lsm.close again;
        (* Only now release the dead process's descriptors (closing fds
           never alters on-disk bytes, but keep it after verification
           anyway). *)
        if crashed then (try Lsm.close t with _ -> ());
        incr budget)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "swept a real matrix (%d kill points)" !budget)
    true (!budget > 60)

(* --- mid-merge abort -> reopen -> retry --- *)

let test_abort_reopen_retry () =
  with_temp_dir (fun dir ->
      (* A lossy device: moderate fault rate with a high consecutive
         cap, and only 2 attempts per operation — WAL appends are
         retried by the caller below, merges abort. *)
      let faults =
        Failpoint.create (Failpoint.uniform ~seed:7 ~max_consecutive:4 0.3)
      in
      let policy = { Retry.default_policy with Retry.attempts = 2 } in
      (* With only 2 attempts against a 30% fault rate, even [create]'s
         initial manifest write can exhaust its budget: retry it at
         this level, like every other acknowledged operation below. *)
      let rec make tries =
        match
          Lsm.create ~buffer_capacity:8 ~page_size:Helpers.small_page_size
            ~faults ~retry_policy:policy dir
        with
        | t -> t
        | exception Prt_storage.Pager.Io_error _ when tries > 0 ->
            rm_rf dir;
            make (tries - 1)
      in
      let t = make 20 in
      let entries = Helpers.random_entries ~n:40 ~seed:101 in
      let acked = ref [] in
      Array.iter
        (fun e ->
          let rec go tries =
            match Lsm.insert t e with
            | () -> acked := e :: !acked
            | exception Prt_storage.Pager.Io_error _ when tries > 0 ->
                go (tries - 1)
            | exception Prt_storage.Pager.Io_error _ -> ()
          in
          go 20)
        entries;
      let acked = Array.of_list (List.rev !acked) in
      Alcotest.(check int) "every insert eventually acked" 40 (Array.length acked);
      (* Merges aborted under the fault storm, but every acknowledged
         insert stays queryable throughout. *)
      let st = Lsm.stats t in
      Alcotest.(check bool) "merges aborted" true (st.Lsm.s_merge_aborts >= 1);
      check_oracle ~msg:"degraded but honest" t acked everything;
      Lsm.close t;
      (* Reopen on a healthy device: WAL replay restores the sealed
         backlog, and the retried merge drains it. *)
      let t =
        Lsm.open_ ~buffer_capacity:8 ~page_size:Helpers.small_page_size dir
      in
      Alcotest.(check int) "count after recovery" 40 (Lsm.count t);
      check_oracle t acked everything;
      Lsm.flush t;
      Alcotest.(check int) "backlog drained" 0 (Lsm.buffer_size t);
      check_slots ~buffer_capacity:8 t;
      Lsm.validate t;
      Lsm.close t)

(* --- background merges --- *)

let test_background () =
  with_temp_dir (fun dir ->
      let n = 300 in
      let entries = Helpers.random_entries ~n ~seed:111 in
      let t =
        Lsm.create ~buffer_capacity:16 ~page_size:Helpers.small_page_size
          ~wal_sync:`Never ~background:true dir
      in
      let inserted = Hashtbl.create n in
      Array.iteri
        (fun i e ->
          Lsm.insert t e;
          Hashtbl.replace inserted (Entry.id e) ();
          if i mod 37 = 0 then begin
            (* Concurrent honest reads: whatever the merge domain is
               doing, a query returns a complete answer over some
               prefix-consistent state — never an error, never a
               partial label. *)
            let result, stats = Lsm.query_list t everything in
            Alcotest.(check bool) "complete under merges" true (Rtree.complete stats);
            List.iter
              (fun e ->
                Alcotest.(check bool)
                  "no phantom entries" true
                  (Hashtbl.mem inserted (Entry.id e)))
              result
          end)
        entries;
      Lsm.wait_merges t;
      Alcotest.(check int) "count" n (Lsm.count t);
      check_oracle t entries everything;
      Array.iter
        (fun q -> check_oracle t entries q)
        (Helpers.random_queries ~n:10 ~seed:112);
      check_slots ~buffer_capacity:16 t;
      Lsm.validate t;
      Lsm.close t;
      let t =
        Lsm.open_ ~buffer_capacity:16 ~page_size:Helpers.small_page_size dir
      in
      Alcotest.(check int) "count after reopen" n (Lsm.count t);
      Lsm.close t)

(* --- qcheck differential vs an in-memory oracle --- *)

(* Random schedules of insert / delete / query / flush / compact /
   reopen over a small buffer, optionally on a lossy device whose
   faults the retry engine absorbs.  Every query must match the oracle
   exactly, with a Complete label. *)
let run_differential ~faulty (sc : Helpers.scenario) =
  with_temp_dir (fun dir ->
      let rng = Rng.create sc.Helpers.sc_seed in
      let faults =
        if faulty then
          Some
            (Failpoint.create
               (Failpoint.uniform ~seed:(sc.Helpers.sc_seed + 1)
                  ~max_consecutive:2 0.05))
        else None
      in
      let make fresh =
        let go =
          (if fresh then Lsm.create else Lsm.open_)
            ~buffer_capacity:4 ~page_size:Helpers.small_page_size ?faults
            ~wal_sync:`Never
        in
        (* Recovery itself runs on the lossy device: retry transient
           faults like any caller would. *)
        let rec attempt n =
          match go dir with
          | t -> t
          | exception Pager.Io_error _ when n > 0 -> attempt (n - 1)
        in
        attempt 50
      in
      let t = ref (make true) in
      let trace = Sys.getenv_opt "PRT_TRACE" <> None in
      let dump tag =
        if trace then begin
          let s = Lsm.stats !t in
          Printf.printf "[%s] count=%d buf=%d sealed=%d tomb=%d comps=[%s] last=%s\n%!"
            tag (Lsm.count !t) s.Lsm.s_buffer s.Lsm.s_sealed s.Lsm.s_tombstones
            (String.concat ";"
               (List.map
                  (fun (l, n, ok) ->
                    Printf.sprintf "L%d:%d%s" l n (if ok then "" else "!"))
                  s.Lsm.s_components))
            s.Lsm.s_last_merge
        end
      in
      let oracle = Hashtbl.create 64 in
      let next_id = ref 0 in
      let alive () = Hashtbl.fold (fun _ e acc -> e :: acc) oracle [] in
      for _ = 1 to sc.Helpers.sc_size do
        match Rng.int rng 100 with
        | r when r < 55 ->
            let e = Entry.make (Helpers.random_rect rng) !next_id in
            incr next_id;
            Lsm.insert !t e;
            Hashtbl.replace oracle (Entry.id e) e;
            dump (Printf.sprintf "insert %d" (Entry.id e))
        | r when r < 70 ->
            if Hashtbl.length oracle > 0 then begin
              let victims =
                List.sort
                  (fun a b -> Int.compare (Entry.id a) (Entry.id b))
                  (alive ())
              in
              let e = List.nth victims (Rng.int rng (List.length victims)) in
              let deleted = Lsm.delete !t e in
              if not deleted then
                Alcotest.failf "%s: delete of live id %d refused"
                  (Helpers.scenario_repro sc) (Entry.id e);
              Hashtbl.remove oracle (Entry.id e);
              dump (Printf.sprintf "delete %d" (Entry.id e))
            end
        | r when r < 90 ->
            let w = Helpers.random_rect rng in
            let result, stats = Lsm.query_list !t w in
            let expected =
              Helpers.brute_force (Array.of_list (alive ())) w
            in
            dump "query";
            if Helpers.ids_of result <> expected then
              Alcotest.failf "%s: query diverged from oracle"
                (Helpers.scenario_repro sc);
            if not (Rtree.complete stats) then
              Alcotest.failf "%s: incomplete answer on a healthy store"
                (Helpers.scenario_repro sc)
        | r when r < 94 -> (
            (* On a lossy device an explicit merge may abort cleanly
               once retries exhaust — acknowledged data stays queryable
               either way, which the next query asserts. *)
            (try Lsm.flush !t with Pager.Io_error _ when faulty -> ());
            dump "flush")
        | r when r < 96 -> (
            (try Lsm.compact !t with Pager.Io_error _ when faulty -> ());
            dump "compact")
        | _ ->
            Lsm.close !t;
            t := make false;
            dump "reopen"
      done;
      let result, _ = Lsm.query_list !t everything in
      let expected =
        List.sort Int.compare (Hashtbl.fold (fun id _ acc -> id :: acc) oracle [])
      in
      if Helpers.ids_of result <> expected then
        Alcotest.failf "%s: final state diverged" (Helpers.scenario_repro sc);
      Lsm.validate !t;
      Lsm.close !t;
      true)

let qcheck_differential =
  QCheck.Test.make ~count:15 ~name:"lsm matches oracle under random schedules"
    (Helpers.arbitrary_scenario ~min_size:10 ~max_size:60 ())
    (run_differential ~faulty:false)

let qcheck_differential_faulty =
  QCheck.Test.make
    ~count:(if Helpers.long_run then 25 else 8)
    ~name:"lsm matches oracle on a lossy device"
    (Helpers.arbitrary_scenario ~min_size:10 ~max_size:40 ())
    (run_differential ~faulty:true)

let suite =
  [
    Alcotest.test_case "basic insert/query/flush" `Quick test_basic;
    Alcotest.test_case "logarithmic slot discipline" `Quick test_merge_levels;
    Alcotest.test_case "batched fan-out" `Quick test_query_batch;
    Alcotest.test_case "reopen replays the WAL" `Quick test_reopen_replay;
    Alcotest.test_case "abandoned handle loses nothing" `Quick test_abandoned_handle;
    Alcotest.test_case "torn WAL tail" `Quick test_torn_wal_tail;
    Alcotest.test_case "deletes, tombstones, compaction" `Quick test_deletes_and_compact;
    Alcotest.test_case "tombstoned id rejects reinsert until resolved" `Quick
      test_tombstone_reinsert;
    Alcotest.test_case "orphan reclamation" `Quick test_orphan_reclaim;
    Alcotest.test_case "kill-point crash matrix" `Slow test_crash_matrix;
    Alcotest.test_case "merge abort -> reopen -> retry" `Quick test_abort_reopen_retry;
    Alcotest.test_case "background merge domain" `Quick test_background;
    Helpers.qcheck_case qcheck_differential;
    Helpers.qcheck_case qcheck_differential_faulty;
  ]
