(* Fault-injection suite: every bulk-loading variant is built over a
   pager that injects transient read/write/alloc faults, torn writes and
   short reads on a deterministic seeded schedule.  The contract under
   test is the storage stack's fault-absorption story: with fault rates
   up to 20% and the default retry policies, every build completes, the
   resulting tree answers queries identically to the brute-force oracle,
   and the unified audit finds nothing — or, if the device is modelled
   as permanently broken, the failure surfaces as [Pager.Io_error].
   Under no schedule may a fault produce silent corruption.

   Also holds the [Pager.open_file] error-path regression tests (no fd
   leak, no [Division_by_zero] on a zero page size). *)

module Rng = Prt_util.Rng
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Failpoint = Prt_storage.Failpoint
module Entry = Prt_rtree.Entry

(* The six bulk-loaded variants of the acceptance criteria.  pr-ext
   exercises the streaming (Record_file) retry path on top of the
   buffer-pool one. *)
let variants =
  [
    ("pr", fun pool entries -> Prt_prtree.Prtree.load pool entries);
    ( "pr-ext",
      fun pool entries ->
        let file = Entry.File.of_array (Buffer_pool.pager pool) entries in
        Prt_prtree.Ext_build.load ~mem_records:200 pool file );
    ("h", fun pool entries -> Prt_rtree.Bulk_hilbert.load_h pool entries);
    ("h4", fun pool entries -> Prt_rtree.Bulk_hilbert.load_h4 pool entries);
    ("str", fun pool entries -> Prt_rtree.Bulk_str.load pool entries);
    ("tgs", fun pool entries -> Prt_rtree.Bulk_tgs.load pool entries);
  ]

(* Build [vname] over a faulty pool and check the full contract: oracle
   agreement, clean audit, no permanent failures, and (so the test is
   not vacuous) report how many faults the schedule actually injected. *)
let build_and_check ~seed ~rate (vname, build) entries =
  let pool, fp = Helpers.faulty_pool ~seed ~rate () in
  let tree = build pool entries in
  Helpers.check_tree_queries ~nqueries:15 ~seed:(seed + 1) tree entries;
  ignore (Helpers.check_audit tree);
  let d = Buffer_pool.degraded pool in
  Alcotest.(check int) (vname ^ ": no permanent failures") 0 d.Buffer_pool.failures;
  Failpoint.total_faults (Failpoint.injected fp)

let test_variants_survive_faults () =
  let entries = Helpers.random_entries ~n:300 ~seed:7 in
  let injected =
    List.fold_left
      (fun acc ((vname, _) as v) ->
        acc + build_and_check ~seed:(Hashtbl.hash vname) ~rate:0.1 v entries)
      0 variants
  in
  (* A 10% schedule over six builds must actually have fired. *)
  Alcotest.(check bool) "faults were injected" true (injected > 0)

(* The degraded channel attributes what the retry layer absorbed. *)
let test_degraded_counters () =
  let entries = Helpers.random_entries ~n:200 ~seed:11 in
  let pool, fp = Helpers.faulty_pool ~seed:13 ~rate:0.15 () in
  let tree = Prt_prtree.Prtree.load pool entries in
  ignore (Helpers.check_audit tree);
  let d = Buffer_pool.degraded pool in
  let injected = Failpoint.total_faults (Failpoint.injected fp) in
  Alcotest.(check bool) "schedule fired" true (injected > 0);
  (* The in-memory PR build does all its I/O through the pool, so every
     injected fault is a fault the pool saw and retried away. *)
  Alcotest.(check int) "pool saw every fault" injected d.Buffer_pool.faults;
  Alcotest.(check bool) "retries recorded" true (d.Buffer_pool.retries >= injected);
  Alcotest.(check bool) "backoff charged" true (d.Buffer_pool.backoff > 0);
  Alcotest.(check int) "no permanent failures" 0 d.Buffer_pool.failures

(* Acceptance criterion: with faults disabled, [Pager.wrap_faulty] is
   observationally free — the exact same build performs the exact same
   I/Os whether or not the pager is wrapped. *)
let test_zero_rate_zero_overhead () =
  let entries = Helpers.random_entries ~n:250 ~seed:17 in
  let build pager =
    let pool = Buffer_pool.create ~capacity:4096 pager in
    let tree = Prt_prtree.Prtree.load pool entries in
    Buffer_pool.flush pool;
    Helpers.check_tree_queries ~nqueries:10 ~seed:18 tree entries;
    Pager.snapshot pager
  in
  let bare = build (Pager.create_memory ~page_size:Helpers.small_page_size ()) in
  let wrapped =
    build
      (Pager.wrap_faulty
         (Pager.create_memory ~page_size:Helpers.small_page_size ())
         (Failpoint.create Failpoint.default))
  in
  Alcotest.(check int) "reads identical" bare.Pager.s_reads wrapped.Pager.s_reads;
  Alcotest.(check int) "writes identical" bare.Pager.s_writes wrapped.Pager.s_writes;
  Alcotest.(check int) "allocs identical" bare.Pager.s_allocs wrapped.Pager.s_allocs

(* A device that faults more times in a row than the retry budget is a
   permanent failure: it must surface as [Pager.Io_error], and the
   degraded channel must record the exhaustion. *)
let test_permanent_failure_surfaces () =
  let entries = Helpers.random_entries ~n:200 ~seed:23 in
  (* An effectively unbounded streak cap models a permanently broken
     device: with only two attempts, both can genuinely fault. *)
  let fp = Helpers.fault_schedule ~max_consecutive:1_000_000 ~seed:29 ~rate:0.5 () in
  let pager = Pager.wrap_faulty (Pager.create_memory ~page_size:Helpers.small_page_size ()) fp in
  let pool =
    Buffer_pool.create ~capacity:4096 ~retry:{ Buffer_pool.attempts = 2; backoff_base = 1 } pager
  in
  (match Prt_prtree.Prtree.load pool entries with
  | _ -> Alcotest.fail "expected the build to fail with Pager.Io_error"
  | exception Pager.Io_error _ -> ());
  let d = Buffer_pool.degraded pool in
  Alcotest.(check bool) "exhaustion recorded" true (d.Buffer_pool.failures >= 1);
  Alcotest.(check bool) "last error kept" true (d.Buffer_pool.last_error <> None)

(* The qcheck property of the acceptance criteria: for arbitrary seeds,
   fault rates in [0, 20%] and input sizes, a build over a faulty pager
   either completes with oracle-identical queries and a clean audit, or
   raises [Pager.Io_error] — silent corruption is the only failure. *)
let prop_no_silent_corruption ~name ~variants ~count =
  QCheck.Test.make ~count ~name
    QCheck.(
      make
        ~print:(fun (seed, rate, n) -> Printf.sprintf "seed=%d rate=%.3f n=%d" seed rate n)
        Gen.(
          triple (int_range 0 1_000_000) (float_range 0.0 0.2) (int_range 1 150)))
    (fun (seed, rate, n) ->
      let entries = Helpers.random_entries ~n ~seed in
      List.for_all
        (fun (_vname, build) ->
          let pool, _fp = Helpers.faulty_pool ~seed:(seed + 1) ~rate () in
          match build pool entries with
          | exception Pager.Io_error _ -> true (* surfaced, not silent *)
          | tree ->
              let ok_queries =
                let rng = Rng.create (seed + 2) in
                let all_ok = ref true in
                for _ = 1 to 8 do
                  let q = Helpers.random_rect rng in
                  let got = Helpers.ids_of (fst (Prt_rtree.Rtree.query_list tree q)) in
                  if got <> Helpers.brute_force entries q then all_ok := false
                done;
                !all_ok
              in
              ok_queries && Prt_rtree.Audit.ok (Prt_rtree.Audit.check tree))
        variants)

let quick_variants = List.filter (fun (n, _) -> List.mem n [ "pr"; "h"; "tgs" ]) variants

(* --- Pager.open_file error-path regressions --- *)

let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_open_file_no_fd_leak () =
  let path = Filename.temp_file "prt_faults" ".idx" in
  let oc = open_out_bin path in
  output_string oc (String.make 100 'x');
  close_out oc;
  let before = count_fds () in
  (match Pager.open_file ~page_size:512 path with
  | _ -> Alcotest.fail "expected Invalid_argument (size not a page multiple)"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "fd count unchanged" before (count_fds ());
  Sys.remove path

let test_open_file_bad_page_size () =
  let path = Filename.temp_file "prt_faults" ".idx" in
  let before = count_fds () in
  (match Pager.open_file ~page_size:0 path with
  | _ -> Alcotest.fail "expected Invalid_argument (page_size 0)"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "fd count unchanged" before (count_fds ());
  Sys.remove path

let suite =
  [
    Alcotest.test_case "all variants survive a 10% fault schedule" `Quick
      test_variants_survive_faults;
    Alcotest.test_case "degraded channel accounts for absorbed faults" `Quick
      test_degraded_counters;
    Alcotest.test_case "zero-rate wrapper adds zero I/O" `Quick test_zero_rate_zero_overhead;
    Alcotest.test_case "permanent failure surfaces as Io_error" `Quick
      test_permanent_failure_surfaces;
    Helpers.qcheck_case
      (prop_no_silent_corruption ~name:"faulty build: oracle-identical or Io_error"
         ~variants:quick_variants ~count:15);
    Alcotest.test_case "open_file: no fd leak on bad file size" `Quick test_open_file_no_fd_leak;
    Alcotest.test_case "open_file: page_size 0 rejected cleanly" `Quick
      test_open_file_bad_page_size;
  ]
  @
  (* The expensive sweep — every variant, more cases — only under
     QCHECK_LONG (dune build @runtest-long). *)
  if Helpers.long_run then
    [
      Helpers.qcheck_case
        (prop_no_silent_corruption ~name:"faulty build (long): all six variants" ~variants
           ~count:100);
    ]
  else []
