(* Geometry tests: rectangle algebra laws (unit + property tests) and
   the d-dimensional box module. *)

module Rect = Prt_geom.Rect
module Hyperrect = Prt_geom.Hyperrect
module Rng = Prt_util.Rng

let rect = Alcotest.testable Rect.pp Rect.equal

let arbitrary_rect =
  QCheck.make
    ~print:(Format.asprintf "%a" Rect.pp)
    QCheck.Gen.(
      int_range 0 1_000_000 >>= fun seed ->
      return (Helpers.random_rect (Rng.create seed)))

let pair_rects = QCheck.pair arbitrary_rect arbitrary_rect
let triple_rects = QCheck.triple arbitrary_rect arbitrary_rect arbitrary_rect

(* --- unit tests --- *)

let test_make_valid () =
  let r = Rect.make ~xmin:1.0 ~ymin:2.0 ~xmax:3.0 ~ymax:5.0 in
  Alcotest.(check (float 0.0)) "width" 2.0 (Rect.width r);
  Alcotest.(check (float 0.0)) "height" 3.0 (Rect.height r);
  Alcotest.(check (float 0.0)) "area" 6.0 (Rect.area r);
  Alcotest.(check (float 0.0)) "margin" 5.0 (Rect.margin r);
  let cx, cy = Rect.center r in
  Alcotest.(check (float 0.0)) "cx" 2.0 cx;
  Alcotest.(check (float 0.0)) "cy" 3.5 cy

let test_make_inverted () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Rect.make ~xmin:1.0 ~ymin:0.0 ~xmax:0.0 ~ymax:1.0);
       false
     with Invalid_argument _ -> true)

let test_of_corners () =
  let r = Rect.of_corners (3.0, 1.0) (0.0, 4.0) in
  Alcotest.check rect "normalized" (Rect.make ~xmin:0.0 ~ymin:1.0 ~xmax:3.0 ~ymax:4.0) r

let test_point_degenerate () =
  let p = Rect.point 2.0 3.0 in
  Alcotest.(check (float 0.0)) "area" 0.0 (Rect.area p);
  Alcotest.(check bool) "self-intersects" true (Rect.intersects p p);
  Alcotest.(check bool) "contains point" true (Rect.contains_point p 2.0 3.0)

let test_touching_intersect () =
  (* Closed rectangles: shared boundary counts as intersection. *)
  let a = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0 in
  let b = Rect.make ~xmin:1.0 ~ymin:0.0 ~xmax:2.0 ~ymax:1.0 in
  Alcotest.(check bool) "touching" true (Rect.intersects a b);
  let c = Rect.make ~xmin:1.0001 ~ymin:0.0 ~xmax:2.0 ~ymax:1.0 in
  Alcotest.(check bool) "separated" false (Rect.intersects a c)

let test_intersection_value () =
  let a = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:2.0 ~ymax:2.0 in
  let b = Rect.make ~xmin:1.0 ~ymin:1.0 ~xmax:3.0 ~ymax:3.0 in
  match Rect.intersection a b with
  | Some i -> Alcotest.check rect "overlap" (Rect.make ~xmin:1.0 ~ymin:1.0 ~xmax:2.0 ~ymax:2.0) i
  | None -> Alcotest.fail "expected overlap"

let test_no_intersection () =
  let a = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0 in
  let b = Rect.make ~xmin:5.0 ~ymin:5.0 ~xmax:6.0 ~ymax:6.0 in
  Alcotest.(check bool) "none" true (Rect.intersection a b = None);
  Alcotest.(check (float 0.0)) "overlap area" 0.0 (Rect.overlap_area a b)

let test_union_array () =
  let rects = [| Rect.point 0.0 0.0; Rect.point 2.0 1.0; Rect.point 1.0 3.0 |] in
  Alcotest.check rect "bounding box" (Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:2.0 ~ymax:3.0)
    (Rect.union_array rects);
  Alcotest.check rect "subrange" (Rect.make ~xmin:1.0 ~ymin:1.0 ~xmax:2.0 ~ymax:3.0)
    (Rect.union_array ~lo:1 rects)

let test_coord_dims () =
  let r = Rect.make ~xmin:1.0 ~ymin:2.0 ~xmax:3.0 ~ymax:4.0 in
  Alcotest.(check (float 0.0)) "xmin" 1.0 (Rect.coord 0 r);
  Alcotest.(check (float 0.0)) "ymin" 2.0 (Rect.coord 1 r);
  Alcotest.(check (float 0.0)) "xmax" 3.0 (Rect.coord 2 r);
  Alcotest.(check (float 0.0)) "ymax" 4.0 (Rect.coord 3 r);
  Alcotest.(check bool) "bad dim raises" true
    (try
       ignore (Rect.coord 4 r);
       false
     with Invalid_argument _ -> true)

(* --- property tests --- *)

let prop_union_commutative =
  QCheck.Test.make ~name:"union commutative" ~count:300 pair_rects (fun (a, b) ->
      Rect.equal (Rect.union a b) (Rect.union b a))

let prop_union_associative =
  QCheck.Test.make ~name:"union associative" ~count:300 triple_rects (fun (a, b, c) ->
      Rect.equal (Rect.union a (Rect.union b c)) (Rect.union (Rect.union a b) c))

let prop_union_idempotent =
  QCheck.Test.make ~name:"union idempotent" ~count:300 arbitrary_rect (fun a ->
      Rect.equal (Rect.union a a) a)

let prop_union_contains =
  QCheck.Test.make ~name:"union contains both" ~count:300 pair_rects (fun (a, b) ->
      let u = Rect.union a b in
      Rect.contains u a && Rect.contains u b)

let prop_intersects_symmetric =
  QCheck.Test.make ~name:"intersects symmetric" ~count:300 pair_rects (fun (a, b) ->
      Rect.intersects a b = Rect.intersects b a)

let prop_intersection_inside =
  QCheck.Test.make ~name:"intersection inside both" ~count:300 pair_rects (fun (a, b) ->
      match Rect.intersection a b with
      | Some i -> Rect.contains a i && Rect.contains b i
      | None -> not (Rect.intersects a b))

let prop_enlargement_nonnegative =
  QCheck.Test.make ~name:"enlargement >= 0" ~count:300 pair_rects (fun (a, b) ->
      Rect.enlargement a b >= 0.0)

let prop_enlargement_zero_when_contained =
  QCheck.Test.make ~name:"enlargement 0 iff covered" ~count:300 pair_rects (fun (a, b) ->
      if Rect.contains a b then Rect.enlargement a b = 0.0 else true)

let prop_contains_implies_intersects =
  QCheck.Test.make ~name:"contains implies intersects" ~count:300 pair_rects (fun (a, b) ->
      if Rect.contains a b then Rect.intersects a b else true)

let prop_overlap_area_symmetric =
  QCheck.Test.make ~name:"overlap area symmetric" ~count:300 pair_rects (fun (a, b) ->
      Float.abs (Rect.overlap_area a b -. Rect.overlap_area b a) < 1e-12)

(* --- Hyperrect --- *)

let test_hyperrect_basics () =
  let b = Hyperrect.make ~lo:[| 0.0; 1.0; 2.0 |] ~hi:[| 1.0; 3.0; 5.0 |] in
  Alcotest.(check int) "dims" 3 (Hyperrect.dims b);
  Alcotest.(check (float 0.0)) "volume" 6.0 (Hyperrect.volume b);
  Alcotest.(check (float 0.0)) "margin" 6.0 (Hyperrect.margin b);
  Alcotest.(check (float 0.0)) "side 2" 3.0 (Hyperrect.side b 2)

let test_hyperrect_mismatch () =
  Alcotest.(check bool) "dim mismatch raises" true
    (try
       ignore (Hyperrect.make ~lo:[| 0.0 |] ~hi:[| 1.0; 2.0 |]);
       false
     with Invalid_argument _ -> true)

let test_hyperrect_rect_roundtrip () =
  let r = Rect.make ~xmin:0.5 ~ymin:1.5 ~xmax:2.5 ~ymax:3.5 in
  Alcotest.check rect "roundtrip" r (Hyperrect.to_rect (Hyperrect.of_rect r))

let test_hyperrect_intersects_matches_rect () =
  let rng = Rng.create 99 in
  for _ = 1 to 200 do
    let a = Helpers.random_rect rng and b = Helpers.random_rect rng in
    Alcotest.(check bool) "agrees with Rect" (Rect.intersects a b)
      (Hyperrect.intersects (Hyperrect.of_rect a) (Hyperrect.of_rect b))
  done

let test_hyperrect_union_contains () =
  let rng = Rng.create 7 in
  for _ = 1 to 200 do
    let a = Hyperrect.of_rect (Helpers.random_rect rng) in
    let b = Hyperrect.of_rect (Helpers.random_rect rng) in
    let u = Hyperrect.union a b in
    Alcotest.(check bool) "contains a" true (Hyperrect.contains u a);
    Alcotest.(check bool) "contains b" true (Hyperrect.contains u b)
  done

let test_hyperrect_coord () =
  let b = Hyperrect.make ~lo:[| 1.0; 2.0 |] ~hi:[| 3.0; 4.0 |] in
  Alcotest.(check (float 0.0)) "lo 0" 1.0 (Hyperrect.coord 0 b);
  Alcotest.(check (float 0.0)) "lo 1" 2.0 (Hyperrect.coord 1 b);
  Alcotest.(check (float 0.0)) "hi 0" 3.0 (Hyperrect.coord 2 b);
  Alcotest.(check (float 0.0)) "hi 1" 4.0 (Hyperrect.coord 3 b)

let suite =
  [
    Alcotest.test_case "rect: make and measures" `Quick test_make_valid;
    Alcotest.test_case "rect: inverted raises" `Quick test_make_inverted;
    Alcotest.test_case "rect: of_corners" `Quick test_of_corners;
    Alcotest.test_case "rect: degenerate point" `Quick test_point_degenerate;
    Alcotest.test_case "rect: touching intersects" `Quick test_touching_intersect;
    Alcotest.test_case "rect: intersection value" `Quick test_intersection_value;
    Alcotest.test_case "rect: disjoint" `Quick test_no_intersection;
    Alcotest.test_case "rect: union_array" `Quick test_union_array;
    Alcotest.test_case "rect: kd coords" `Quick test_coord_dims;
    Helpers.qcheck_case prop_union_commutative;
    Helpers.qcheck_case prop_union_associative;
    Helpers.qcheck_case prop_union_idempotent;
    Helpers.qcheck_case prop_union_contains;
    Helpers.qcheck_case prop_intersects_symmetric;
    Helpers.qcheck_case prop_intersection_inside;
    Helpers.qcheck_case prop_enlargement_nonnegative;
    Helpers.qcheck_case prop_enlargement_zero_when_contained;
    Helpers.qcheck_case prop_contains_implies_intersects;
    Helpers.qcheck_case prop_overlap_area_symmetric;
    Alcotest.test_case "hyperrect: basics" `Quick test_hyperrect_basics;
    Alcotest.test_case "hyperrect: mismatch raises" `Quick test_hyperrect_mismatch;
    Alcotest.test_case "hyperrect: rect roundtrip" `Quick test_hyperrect_rect_roundtrip;
    Alcotest.test_case "hyperrect: intersects agrees with rect" `Quick
      test_hyperrect_intersects_matches_rect;
    Alcotest.test_case "hyperrect: union contains" `Quick test_hyperrect_union_contains;
    Alcotest.test_case "hyperrect: kd coords" `Quick test_hyperrect_coord;
  ]
