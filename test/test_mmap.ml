(* The mmap read backend: byte-identical results across backends, CRC
   parity between the mapped verifier and the page codec, counter and
   reporting surfaces, and graceful degradation on the mapped path.

   The headline property is cross-backend equivalence: for the same
   committed file, [query(mmap) = query(pread) = in-memory oracle] —
   entry for entry, in the same order — for sequential descents,
   multicore executor batches, and snapshot-pinned reads racing
   commits.  All randomized cases print a `PRT_QCHECK_SEED=...`
   repro. *)

module Rect = Prt_geom.Rect
module Page = Prt_storage.Page
module View = Prt_storage.View
module Pager = Prt_storage.Pager
module Mmap_pager = Prt_storage.Mmap_pager
module Quarantine = Prt_storage.Quarantine
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Query = Prt_rtree.Query
module Dynamic = Prt_rtree.Dynamic
module Index_file = Prt_rtree.Index_file
module Qexec = Prt_rtree.Qexec
module Prtree = Prt_prtree.Prtree

let page_size = Helpers.small_page_size

let with_temp f =
  let path = Filename.temp_file "prt_mmap" ".idx" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let create_index ?backend path entries =
  Index_file.create ~page_size ?backend path ~build:(fun pool -> Prtree.load pool entries)

let everything = Rect.make ~xmin:(-1e9) ~ymin:(-1e9) ~xmax:1e9 ~ymax:1e9

(* Exact result lists (id + rect, in delivery order), not just id
   multisets: the backends must agree on order too, since both claim
   the same preorder descent. *)
let results_of tree window =
  let acc = ref [] in
  ignore (Rtree.query_unrecorded tree window ~f:(fun e -> acc := e :: !acc));
  List.rev_map (fun e -> (Entry.id e, Entry.rect e)) !acc |> List.rev

(* --- CRC parity: the mapped verifier must accept exactly the pages
   the page codec wrote --- *)

let test_crc_parity () =
  let rng = Random.State.make [| 987 |] in
  for len = 1 to 64 do
    let b = Bytes.init (len * 7) (fun _ -> Char.chr (Random.State.int rng 256)) in
    let m =
      Bigarray.Array1.init Bigarray.char Bigarray.c_layout (Bytes.length b) (Bytes.get b)
    in
    Alcotest.(check int)
      (Printf.sprintf "crc32c parity over %d bytes" (Bytes.length b))
      (Page.crc32c b ~pos:0 ~len:(Bytes.length b))
      (View.crc32c m ~pos:0 ~len:(Bytes.length b))
  done;
  (* Integer-load parity over sign/top-bit boundaries.  0x40000000 is
     the regression that motivated this: on 63-bit native ints a
     32-place shift parks bit 30 on the sign bit, so a u32 with bit 30
     set read back +2^31 too large and every CRC-verify of such a page
     failed. *)
  let probes =
    [ 0l; 1l; -1l; Int32.max_int; Int32.min_int; 0x40000000l; 0x7D3CC132l;
      0x80000001l; 0xC0000000l; 0x12345678l ]
  in
  List.iter
    (fun v ->
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 v;
      let m =
        Bigarray.Array1.init Bigarray.char Bigarray.c_layout 4 (Bytes.get b)
      in
      Alcotest.(check int)
        (Printf.sprintf "get_i32 parity for %ld" v)
        (Int32.to_int v) (View.get_i32 m 0);
      Alcotest.(check int)
        (Printf.sprintf "get_u16 parity for %ld" v)
        (Char.code (Bytes.get b 0) lor (Char.code (Bytes.get b 1) lsl 8))
        (View.get_u16 m 0))
    probes

(* --- cross-backend equivalence --- *)

(* One committed file, opened under each backend (plus the still-open
   creating handle): every window query must return byte-identical
   results, and both must equal the brute-force oracle. *)
let qcheck_backends_agree =
  let count = if Helpers.long_run then 300 else 40 in
  QCheck.Test.make ~count ~name:"mmap: query(mmap) = query(pread) = oracle"
    (Helpers.arbitrary_scenario ~min_size:0 ~max_size:600 ())
    (fun sc ->
      with_temp @@ fun path ->
      let entries = Helpers.random_entries ~n:sc.Helpers.sc_size ~seed:sc.Helpers.sc_seed in
      let queries = Array.append [| everything |] (Helpers.random_queries ~n:12 ~seed:(sc.Helpers.sc_seed + 1)) in
      let idx0 = create_index ~backend:`Mmap path entries in
      let mmap_results = Array.map (results_of (Index_file.tree idx0)) queries in
      if Array.length entries > 0 && Index_file.read_backend idx0 = "mmap" then begin
        let c = Option.get (Index_file.mmap_counters idx0) in
        if c.Mmap_pager.c_windows_served = 0 then
          QCheck.Test.fail_report "mmap backend active but no mapped scans served"
      end;
      Index_file.close idx0;
      let idx1 = Index_file.open_ ~page_size ~backend:`Pread path in
      let pread_results = Array.map (results_of (Index_file.tree idx1)) queries in
      Index_file.close idx1;
      Array.iteri
        (fun i w ->
          if mmap_results.(i) <> pread_results.(i) then
            QCheck.Test.fail_report (Printf.sprintf "query %d: mmap and pread disagree" i);
          let oracle = Helpers.brute_force entries w in
          let got = List.sort Int.compare (List.map fst mmap_results.(i)) in
          if got <> oracle then
            QCheck.Test.fail_report
              (Printf.sprintf "query %d: backends agree but differ from the oracle" i))
        queries;
      true)

(* The executor path: batches on N domains under each backend return
   identical results (the mapped path shares one mapping across worker
   domains with no per-domain state). *)
let qcheck_qexec_backends_agree =
  let count = if Helpers.long_run then 150 else 25 in
  QCheck.Test.make ~count ~name:"mmap: executor batches agree across backends and jobs"
    (QCheck.pair
       (Helpers.arbitrary_scenario ~min_size:0 ~max_size:400 ())
       (QCheck.oneofl ~print:string_of_int [ 1; 2; 4 ]))
    (fun (sc, jobs) ->
      with_temp @@ fun path ->
      let entries = Helpers.random_entries ~n:sc.Helpers.sc_size ~seed:sc.Helpers.sc_seed in
      let queries = Helpers.random_queries ~n:10 ~seed:(sc.Helpers.sc_seed + 2) in
      let run backend =
        let idx = Index_file.open_ ~page_size ~backend path in
        Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
        let r = Qexec.run ~jobs (Index_file.executor idx) queries in
        Array.map (fun (hits, _) -> List.map (fun e -> (Entry.id e, Entry.rect e)) hits) r
      in
      let idx0 = create_index path entries in
      Index_file.close idx0;
      let m = run `Mmap and p = run `Pread in
      if m <> p then QCheck.Test.fail_report "executor batch differs across backends";
      Array.iteri
        (fun i w ->
          let got = List.sort Int.compare (List.map fst m.(i)) in
          if got <> Helpers.brute_force entries w then
            QCheck.Test.fail_report (Printf.sprintf "batch query %d differs from the oracle" i))
        queries;
      true)

(* Snapshot-pinned reads under each backend: pin, commit overwrites on
   top, and the pinned read must keep answering the pinned tree —
   through retained images where the mapping has moved on. *)
let qcheck_snapshot_backends_agree =
  let count = if Helpers.long_run then 150 else 25 in
  QCheck.Test.make ~count ~name:"mmap: snapshot-pinned reads agree across backends"
    (Helpers.arbitrary_scenario ~min_size:10 ~max_size:300 ())
    (fun sc ->
      let entries = Helpers.random_entries ~n:sc.Helpers.sc_size ~seed:sc.Helpers.sc_seed in
      let pre = Helpers.brute_force entries everything in
      let extra j =
        let x = 0.1 +. (0.08 *. float_of_int j) in
        Entry.make (Rect.make ~xmin:x ~ymin:x ~xmax:(x +. 0.01) ~ymax:(x +. 0.01)) (1_000_000 + j)
      in
      let run backend =
        with_temp @@ fun path ->
        let idx = create_index ~backend path entries in
        Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
        let s = Index_file.snapshot idx in
        for j = 0 to 4 do
          Index_file.update idx (fun tree -> Dynamic.insert tree (extra j))
        done;
        let sv = Index_file.snapshot_view s in
        let pinned =
          Helpers.ids_of (fst (Rtree.query_list ~snapshot:sv (Index_file.tree idx) everything))
        in
        let live = Helpers.ids_of (fst (Rtree.query_list (Index_file.tree idx) everything)) in
        Index_file.release_snapshot s;
        (pinned, live)
      in
      let pm, lm = run `Mmap and pp, lp = run `Pread in
      if pm <> pre then QCheck.Test.fail_report "mmap pinned read is not the pinned tree";
      if pp <> pre then QCheck.Test.fail_report "pread pinned read is not the pinned tree";
      if lm <> lp then QCheck.Test.fail_report "live reads disagree across backends";
      true)

(* --- update visibility and CRC memo refresh --- *)

(* Commits through the mmap-backed handle must be visible to the next
   mapped query (refresh retags the CRC memo; no stale pre-commit
   verification may survive), and the executor must see them too —
   the mmap twin of test_qexec's pread shard-cache case. *)
let test_update_visibility_mmap () =
  with_temp @@ fun path ->
  let entries = Helpers.random_entries ~n:250 ~seed:77 in
  let idx = create_index ~backend:`Mmap path entries in
  Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
  Alcotest.(check string) "mmap active" "mmap" (Index_file.read_backend idx);
  let exec = Index_file.executor idx in
  let pre = Helpers.brute_force entries everything in
  let r1 = Qexec.run ~jobs:2 exec [| everything |] in
  Alcotest.(check (list int)) "batch pre-update" pre (Helpers.ids_of (fst r1.(0)));
  let e = Entry.make (Rect.make ~xmin:0.4 ~ymin:0.4 ~xmax:0.5 ~ymax:0.5) 999_999 in
  Index_file.update idx (fun tree -> Dynamic.insert tree e);
  let post = List.sort Int.compare (999_999 :: pre) in
  Alcotest.(check (list int)) "sequential query sees the commit" post
    (Helpers.ids_of (fst (Rtree.query_list (Index_file.tree idx) everything)));
  let r2 = Qexec.run ~jobs:2 exec [| everything |] in
  Alcotest.(check (list int)) "batch sees the commit" post (Helpers.ids_of (fst r2.(0)));
  (* Another round: the memo was refreshed, so mapped pages re-verify
     against the committed bytes (crc_verified grows again). *)
  let c = Option.get (Index_file.mmap_counters idx) in
  Alcotest.(check bool) "mapped scans served" true (c.Mmap_pager.c_windows_served > 0)

(* The second identical query must skip every CRC sweep via the
   per-generation memo. *)
let test_crc_verified_once_per_generation () =
  with_temp @@ fun path ->
  let entries = Helpers.random_entries ~n:300 ~seed:55 in
  let idx = create_index ~backend:`Mmap path entries in
  Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
  let tree = Index_file.tree idx in
  ignore (Rtree.query_list tree everything);
  let c1 = Option.get (Index_file.mmap_counters idx) in
  Alcotest.(check bool) "first pass runs CRC sweeps" true (c1.Mmap_pager.c_crc_verified > 0);
  ignore (Rtree.query_list tree everything);
  let c2 = Option.get (Index_file.mmap_counters idx) in
  Alcotest.(check int) "second pass runs no new sweeps" c1.Mmap_pager.c_crc_verified
    c2.Mmap_pager.c_crc_verified;
  Alcotest.(check bool) "second pass skips via the memo" true
    (c2.Mmap_pager.c_crc_skipped > c1.Mmap_pager.c_crc_skipped)

(* --- allocation-free query surface --- *)

(* [query_into] must agree with [query_list] entry for entry on the
   mapped path, and reusing one buffer across windows must not leak
   results between queries. *)
let test_query_into_agrees () =
  with_temp @@ fun path ->
  let entries = Helpers.random_entries ~n:400 ~seed:91 in
  let idx = create_index ~backend:`Mmap path entries in
  Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
  let tree = Index_file.tree idx in
  let h = Rtree.hits_make () in
  Array.iter
    (fun w ->
      let expect, stats = Rtree.query_list tree w in
      Rtree.query_into tree w ~into:h;
      Alcotest.(check int) "same count" (List.length expect) (Rtree.hits_length h);
      List.iteri
        (fun i e ->
          let got = Rtree.hits_get h i in
          Alcotest.(check int) "same id" (Entry.id e) (Entry.id got);
          Alcotest.(check bool) "same rect" true (Rect.equal (Entry.rect e) (Entry.rect got)))
        expect;
      Alcotest.(check int) "same matched" stats.Rtree.matched
        (Rtree.hits_stats h).Rtree.matched;
      Alcotest.(check int) "same leaves" stats.Rtree.leaf_visited
        (Rtree.hits_stats h).Rtree.leaf_visited)
    (Array.append [| everything |] (Helpers.random_queries ~n:20 ~seed:92))

(* The filtered descents (stabbing/enclosed/covering/exists) share the
   mapped scan; spot-check them against the pread backend. *)
let test_query_forms_agree () =
  with_temp @@ fun path ->
  let entries = Helpers.random_entries ~n:350 ~seed:137 in
  let idx0 = create_index path entries in
  Index_file.close idx0;
  let run backend =
    let idx = Index_file.open_ ~page_size ~backend path in
    Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
    let tree = Index_file.tree idx in
    let windows = Helpers.random_queries ~n:15 ~seed:138 in
    Array.to_list windows
    |> List.map (fun w ->
           ( Helpers.ids_of (fst (Query.enclosed_list tree w)),
             Helpers.ids_of (fst (Query.covering_list tree w)),
             Helpers.ids_of (fst (Query.stabbing_list tree ~x:(Rect.xmin w) ~y:(Rect.ymin w))),
             Query.exists tree w ))
  in
  Alcotest.(check bool) "query forms agree across backends" true (run `Mmap = run `Pread)

(* --- degradation on the mapped path --- *)

let corrupt_page_on_disk path id =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd ((id * page_size) + 64) Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.make 16 '\171') 0 16))

(* On-disk damage under mmap: the CRC gate refuses the mapped page, the
   descent falls back to pread, the pread read quarantines it, and the
   query degrades to a Partial answer — never a raise, never garbage. *)
let test_mapped_damage_degrades () =
  with_temp @@ fun path ->
  let entries = Helpers.random_entries ~n:400 ~seed:23 in
  let oracle = Helpers.brute_force entries everything in
  let idx0 = create_index path entries in
  let victim =
    let tree = Index_file.tree idx0 in
    let height = Rtree.height tree in
    let acc = ref [] in
    Rtree.iter_nodes tree ~f:(fun ~depth ~id _ -> if depth = height then acc := id :: !acc);
    List.hd (List.rev !acc)
  in
  Index_file.close idx0;
  corrupt_page_on_disk path victim;
  let idx = Index_file.open_ ~page_size ~backend:`Mmap path in
  Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
  Alcotest.(check string) "mmap active" "mmap" (Index_file.read_backend idx);
  let q = Index_file.quarantine idx in
  let hits, stats = Rtree.query_list ~quarantine:q (Index_file.tree idx) everything in
  Alcotest.(check bool) "degraded, not failed" false (Rtree.complete stats);
  List.iter
    (fun e -> Alcotest.(check bool) "subset of oracle" true (List.mem (Entry.id e) oracle))
    hits;
  Alcotest.(check bool) "victim quarantined" true (Quarantine.mem q victim);
  let c = Option.get (Index_file.mmap_counters idx) in
  Alcotest.(check bool) "fallback counted" true (c.Mmap_pager.c_fallbacks > 0)

(* --- backend policy --- *)

let test_backend_policy () =
  with_temp @@ fun path ->
  let entries = Helpers.random_entries ~n:100 ~seed:5 in
  let idx0 = create_index path entries in
  Alcotest.(check string) "auto picks mmap on a mappable file" "mmap"
    (Index_file.read_backend idx0);
  Index_file.close idx0;
  let idx = Index_file.open_ ~page_size ~backend:`Pread path in
  Alcotest.(check string) "pread opts out" "pread" (Index_file.read_backend idx);
  Alcotest.(check bool) "no counters on pread" true (Index_file.mmap_counters idx = None);
  Index_file.close idx;
  (* Auto with a crash failpoint stays on pread so fault injection
     keeps intercepting reads. *)
  let fp = Prt_storage.Failpoint.create Prt_storage.Failpoint.default in
  let idx = Index_file.open_ ~page_size ~crash:fp path in
  Alcotest.(check string) "auto + failpoint stays pread" "pread" (Index_file.read_backend idx);
  Index_file.close idx

let suite =
  [
    Alcotest.test_case "crc32c: View and Page agree bit for bit" `Quick test_crc_parity;
    Helpers.qcheck_case qcheck_backends_agree;
    Helpers.qcheck_case qcheck_qexec_backends_agree;
    Helpers.qcheck_case qcheck_snapshot_backends_agree;
    Alcotest.test_case "commits visible through the mapped path" `Quick
      test_update_visibility_mmap;
    Alcotest.test_case "CRC verified once per (page, generation)" `Quick
      test_crc_verified_once_per_generation;
    Alcotest.test_case "query_into agrees with query_list" `Quick test_query_into_agrees;
    Alcotest.test_case "filtered query forms agree across backends" `Quick
      test_query_forms_agree;
    Alcotest.test_case "on-disk damage degrades the mapped path" `Quick
      test_mapped_damage_degrades;
    Alcotest.test_case "backend policy: auto, pread, failpoint" `Quick test_backend_policy;
  ]
