(* d-dimensional PR-tree tests: codec roundtrips, pseudo-tree structure,
   exact query answers against a brute-force oracle in 3 and 4
   dimensions, and the (N/B)^(1-1/d) flavour of the worst-case bound. *)

module Hyperrect = Prt_geom.Hyperrect
module Rng = Prt_util.Rng
module Entry_nd = Prt_ndtree.Entry_nd
module Node_nd = Prt_ndtree.Node_nd
module Rtree_nd = Prt_ndtree.Rtree_nd
module Pseudo_nd = Prt_ndtree.Pseudo_nd
module Prtree_nd = Prt_ndtree.Prtree_nd

let random_box ~dims rng =
  let lo = Array.init dims (fun _ -> Rng.float rng 1.0) in
  let hi = Array.mapi (fun _ v -> Float.min 1.0 (v +. Rng.float rng 0.2)) lo in
  Hyperrect.make ~lo ~hi

let random_entries ~dims ~n ~seed =
  let rng = Rng.create seed in
  Array.init n (fun i -> Entry_nd.make (random_box ~dims rng) i)

let brute_force entries window =
  Array.to_list entries
  |> List.filter (fun e -> Hyperrect.intersects (Entry_nd.box e) window)
  |> List.map Entry_nd.id
  |> List.sort Int.compare

let ids_of result = List.sort Int.compare (List.map Entry_nd.id result)

let test_entry_codec () =
  List.iter
    (fun dims ->
      let rng = Rng.create dims in
      let e = Entry_nd.make (random_box ~dims rng) 4242 in
      let buf = Bytes.create 256 in
      Entry_nd.write ~dims buf 11 e;
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip dims=%d" dims)
        true
        (Entry_nd.equal e (Entry_nd.read ~dims buf 11)))
    [ 1; 2; 3; 4; 5 ]

let test_entry_size_matches_2d () =
  Alcotest.(check int) "d=2 record is the paper's 36 bytes" 36 (Entry_nd.size ~dims:2);
  (* And the 4 KB fanout for 3-D. *)
  Alcotest.(check int) "3-D fanout" ((4096 - 16 - 3) / 52) (Node_nd.capacity ~page_size:4096 ~dims:3)

let test_node_codec () =
  let dims = 3 in
  let entries = random_entries ~dims ~n:9 ~seed:1 in
  let node = Node_nd.make Node_nd.Internal entries in
  let decoded = Node_nd.decode ~dims (Node_nd.encode ~page_size:512 ~dims node) in
  Alcotest.(check int) "count" 9 (Node_nd.length decoded);
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) "entry" true (Entry_nd.equal e (Node_nd.entries decoded).(i)))
    entries

let b = 9 (* 512-byte pages with 3-D entries: (512-3)/52 = 9 *)

let test_pseudo_nd_structure () =
  let dims = 3 in
  List.iter
    (fun n ->
      let entries = random_entries ~dims ~n ~seed:n in
      let t = Pseudo_nd.build ~b ~dims entries in
      Pseudo_nd.validate ~b ~dims t;
      Alcotest.(check int) "size" n (Pseudo_nd.size t);
      let ids =
        Pseudo_nd.leaves t
        |> List.concat_map (fun arr -> Array.to_list (Array.map Entry_nd.id arr))
        |> List.sort Int.compare
      in
      Alcotest.(check (list int)) "partition" (List.init n Fun.id) ids)
    [ 1; 9; 10; 100; 400 ]

let check_tree_queries ~dims tree entries ~seed =
  let rng = Rng.create seed in
  for _ = 1 to 30 do
    let window = random_box ~dims rng in
    let result, _ = Rtree_nd.query_list tree window in
    Alcotest.(check (list int)) "query vs oracle" (brute_force entries window) (ids_of result)
  done

let small_pool () =
  Prt_storage.Buffer_pool.create ~capacity:4096 (Prt_storage.Pager.create_memory ~page_size:512 ())

let test_prtree_nd_3d () =
  List.iter
    (fun n ->
      let dims = 3 in
      let entries = random_entries ~dims ~n ~seed:(n + 5) in
      let tree = Prtree_nd.load ~dims (small_pool ()) entries in
      let s = Rtree_nd.validate tree in
      Alcotest.(check int) "entries" n s.Rtree_nd.entries;
      check_tree_queries ~dims tree entries ~seed:(n * 3))
    [ 0; 1; 9; 10; 200; 800 ]

let test_prtree_nd_4d () =
  let dims = 4 in
  let entries = random_entries ~dims ~n:500 ~seed:77 in
  let tree = Prtree_nd.load ~dims (small_pool ()) entries in
  ignore (Rtree_nd.validate tree);
  check_tree_queries ~dims tree entries ~seed:78

let test_prtree_nd_1d () =
  (* Degenerate: 1-D interval trees still work. *)
  let dims = 1 in
  let entries = random_entries ~dims ~n:300 ~seed:12 in
  let tree = Prtree_nd.load ~dims (small_pool ()) entries in
  ignore (Rtree_nd.validate tree);
  check_tree_queries ~dims tree entries ~seed:13

let test_dimension_mismatch () =
  let tree = Prtree_nd.load ~dims:3 (small_pool ()) (random_entries ~dims:3 ~n:50 ~seed:2) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Rtree_nd.query_count tree (Hyperrect.point [| 0.5; 0.5 |]));
       false
     with Invalid_argument _ -> true)

let test_leaves_same_level () =
  let dims = 3 in
  let entries = random_entries ~dims ~n:700 ~seed:4 in
  let tree = Prtree_nd.load ~dims (small_pool ()) entries in
  (* validate already checks leaf depths; make sure it runs deep. *)
  let s = Rtree_nd.validate tree in
  Alcotest.(check bool) "multi-level" true (s.Rtree_nd.nodes > s.Rtree_nd.leaves)

(* In 3-D the guarantee is O((N/B)^(2/3) + T/B): slab queries with tiny
   output must visit far fewer leaves than the whole tree as N grows. *)
let test_bound_3d_flavour () =
  let dims = 3 in
  let visits n =
    let rng = Rng.create 91 in
    let entries =
      Array.init n (fun i ->
          Entry_nd.make (Hyperrect.point (Array.init dims (fun _ -> Rng.float rng 1.0))) i)
    in
    let tree = Prtree_nd.load ~dims (small_pool ()) entries in
    let total_leaves = (Rtree_nd.validate tree).Rtree_nd.leaves in
    (* A thin slab: zero-volume plane through the cube. *)
    let window =
      Hyperrect.make ~lo:[| 0.0; 0.0; 0.5 |] ~hi:[| 1.0; 1.0; 0.5 |]
    in
    let stats = Rtree_nd.query_count tree window in
    (stats.Rtree_nd.leaf_visited, total_leaves)
  in
  let visited, total = visits 6000 in
  (* (N/B)^(2/3) with N/B = 667 gives ~76; allow generous constant but
     demand clearly sublinear behaviour. *)
  Alcotest.(check bool)
    (Printf.sprintf "sublinear: %d of %d leaves" visited total)
    true
    (visited * 2 < total)

let suite =
  [
    Alcotest.test_case "entry codec across dims" `Quick test_entry_codec;
    Alcotest.test_case "record sizes" `Quick test_entry_size_matches_2d;
    Alcotest.test_case "node codec" `Quick test_node_codec;
    Alcotest.test_case "pseudo-nd structure" `Quick test_pseudo_nd_structure;
    Alcotest.test_case "prtree-nd 3d queries" `Quick test_prtree_nd_3d;
    Alcotest.test_case "prtree-nd 4d queries" `Quick test_prtree_nd_4d;
    Alcotest.test_case "prtree-nd 1d queries" `Quick test_prtree_nd_1d;
    Alcotest.test_case "dimension mismatch" `Quick test_dimension_mismatch;
    Alcotest.test_case "leaves on one level" `Quick test_leaves_same_level;
    Alcotest.test_case "3d bound flavour" `Quick test_bound_3d_flavour;
  ]
