(* Storage tests: page codecs, the counted pager (memory and file
   backends), LRU eviction order, and buffer pool write-back. *)

module Page = Prt_storage.Page
module Pager = Prt_storage.Pager
module Lru = Prt_storage.Lru
module Buffer_pool = Prt_storage.Buffer_pool

(* --- Page codec --- *)

let test_page_f64_roundtrip () =
  let p = Page.create 64 in
  List.iteri
    (fun i v ->
      Page.set_f64 p (i * 8) v;
      Alcotest.(check (float 0.0)) "roundtrip" v (Page.get_f64 p (i * 8)))
    [ 0.0; -1.5; 3.14159; infinity; neg_infinity; 1e-300; Float.max_float ]

let test_page_nan_roundtrip () =
  let p = Page.create 16 in
  Page.set_f64 p 0 Float.nan;
  Alcotest.(check bool) "nan" true (Float.is_nan (Page.get_f64 p 0))

let test_page_i32_roundtrip () =
  let p = Page.create 16 in
  List.iter
    (fun v ->
      Page.set_i32 p 4 v;
      Alcotest.(check int) "roundtrip" v (Page.get_i32 p 4))
    [ 0; 1; -1; 123456789; Int32.to_int Int32.max_int; Int32.to_int Int32.min_int ]

let test_page_i32_overflow () =
  let p = Page.create 16 in
  Alcotest.(check bool) "raises" true
    (try
       Page.set_i32 p 0 (Int32.to_int Int32.max_int + 1);
       false
     with Invalid_argument _ -> true)

let test_page_u16_u8 () =
  let p = Page.create 16 in
  Page.set_u16 p 0 65535;
  Alcotest.(check int) "u16" 65535 (Page.get_u16 p 0);
  Page.set_u8 p 2 255;
  Alcotest.(check int) "u8" 255 (Page.get_u8 p 2);
  Alcotest.(check bool) "u16 overflow" true
    (try
       Page.set_u16 p 0 65536;
       false
     with Invalid_argument _ -> true)

(* --- Pager (memory backend) --- *)

let test_pager_roundtrip () =
  let pager = Pager.create_memory ~page_size:128 () in
  let a = Pager.alloc pager and b = Pager.alloc pager in
  let pa = Bytes.make 128 'a' and pb = Bytes.make 128 'b' in
  Pager.write pager a pa;
  Pager.write pager b pb;
  Alcotest.(check bytes) "a" pa (Pager.read pager a);
  Alcotest.(check bytes) "b" pb (Pager.read pager b);
  Alcotest.(check int) "pages" 2 (Pager.num_pages pager)

let test_pager_counters () =
  let pager = Pager.create_memory ~page_size:64 () in
  let id = Pager.alloc pager in
  let before = Pager.snapshot pager in
  Pager.write pager id (Bytes.make 64 'x');
  ignore (Pager.read pager id);
  ignore (Pager.read pager id);
  let d = Pager.diff ~before ~after:(Pager.snapshot pager) in
  Alcotest.(check int) "reads" 2 d.Pager.s_reads;
  Alcotest.(check int) "writes" 1 d.Pager.s_writes;
  Alcotest.(check int) "total" 3 (Pager.total_io d)

let test_pager_free_reuse () =
  let pager = Pager.create_memory ~page_size:64 () in
  let a = Pager.alloc pager in
  let _b = Pager.alloc pager in
  Pager.free pager a;
  Alcotest.(check int) "freed page is reused" a (Pager.alloc pager);
  Alcotest.(check int) "no growth" 2 (Pager.num_pages pager)

let test_pager_double_free () =
  let pager = Pager.create_memory ~page_size:64 () in
  let a = Pager.alloc pager in
  Pager.free pager a;
  Alcotest.(check bool) "double free raises" true
    (try
       Pager.free pager a;
       false
     with Invalid_argument _ -> true)

let test_pager_bad_id () =
  let pager = Pager.create_memory ~page_size:64 () in
  Alcotest.(check bool) "read out of range" true
    (try
       ignore (Pager.read pager 3);
       false
     with Invalid_argument _ -> true)

let test_pager_size_mismatch () =
  let pager = Pager.create_memory ~page_size:64 () in
  let id = Pager.alloc pager in
  Alcotest.(check bool) "short buffer raises" true
    (try
       Pager.write pager id (Bytes.make 63 'x');
       false
     with Invalid_argument _ -> true)

(* --- Pager (file backend) --- *)

let with_temp_file f =
  let path = Filename.temp_file "prt_test" ".pages" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_pager_file_roundtrip () =
  with_temp_file (fun path ->
      let pager = Pager.create_file ~page_size:128 path in
      let a = Pager.alloc pager and b = Pager.alloc pager in
      let pa = Bytes.make 128 'a' and pb = Bytes.make 128 'b' in
      Pager.write pager a pa;
      Pager.write pager b pb;
      Alcotest.(check bytes) "b" pb (Pager.read pager b);
      Pager.close pager;
      (* Reopen and read back. *)
      let pager = Pager.open_file ~page_size:128 path in
      Alcotest.(check int) "pages persisted" 2 (Pager.num_pages pager);
      Alcotest.(check bytes) "a persisted" pa (Pager.read pager a);
      Pager.close pager)

let test_pager_closed () =
  with_temp_file (fun path ->
      let pager = Pager.create_file ~page_size:64 path in
      let id = Pager.alloc pager in
      Pager.close pager;
      Alcotest.(check bool) "use after close raises" true
        (try
           ignore (Pager.read pager id);
           false
         with Invalid_argument _ -> true))

(* --- LRU --- *)

let test_lru_eviction_order () =
  let lru = Lru.create 2 in
  Alcotest.(check (option (pair int string))) "no evict" None (Lru.add lru 1 "a");
  Alcotest.(check (option (pair int string))) "no evict" None (Lru.add lru 2 "b");
  (* Touch 1 so that 2 is the least recently used. *)
  Alcotest.(check (option string)) "find 1" (Some "a") (Lru.find lru 1);
  Alcotest.(check (option (pair int string))) "evicts 2" (Some (2, "b")) (Lru.add lru 3 "c");
  Alcotest.(check (option string)) "2 gone" None (Lru.find lru 2);
  Alcotest.(check int) "length" 2 (Lru.length lru)

let test_lru_update_existing () =
  let lru = Lru.create 2 in
  ignore (Lru.add lru 1 "a");
  ignore (Lru.add lru 1 "a2");
  Alcotest.(check int) "no duplicate" 1 (Lru.length lru);
  Alcotest.(check (option string)) "updated" (Some "a2") (Lru.find lru 1)

let test_lru_remove () =
  let lru = Lru.create 3 in
  ignore (Lru.add lru 1 "a");
  Alcotest.(check (option string)) "removed value" (Some "a") (Lru.remove lru 1);
  Alcotest.(check (option string)) "gone" None (Lru.find lru 1);
  Alcotest.(check (option string)) "remove missing" None (Lru.remove lru 9)

let test_lru_capacity_one () =
  let lru = Lru.create 1 in
  ignore (Lru.add lru 1 "a");
  Alcotest.(check (option (pair int string))) "evicts previous" (Some (1, "a")) (Lru.add lru 2 "b");
  Alcotest.(check (option string)) "kept" (Some "b") (Lru.find lru 2)

let test_lru_stress_against_model () =
  (* Random ops against a naive list model. *)
  let rng = Prt_util.Rng.create 1234 in
  let lru = Lru.create 8 in
  let model = ref [] in (* most recent first, max 8 *)
  for _ = 1 to 2000 do
    let key = Prt_util.Rng.int rng 20 in
    if Prt_util.Rng.bool rng then begin
      (* add *)
      ignore (Lru.add lru key key);
      model := (key, key) :: List.remove_assoc key !model;
      if List.length !model > 8 then
        model := List.filteri (fun i _ -> i < 8) !model
    end
    else begin
      let expected = List.assoc_opt key !model in
      let got = Lru.find lru key in
      Alcotest.(check (option int)) "model agrees" expected got;
      (* find touches recency in both *)
      match expected with
      | Some v -> model := (key, v) :: List.remove_assoc key !model
      | None -> ()
    end
  done

(* --- Buffer pool --- *)

let test_pool_read_through () =
  let pager = Pager.create_memory ~page_size:64 () in
  let pool = Buffer_pool.create ~capacity:4 pager in
  let id = Pager.alloc pager in
  Pager.write pager id (Bytes.make 64 'z');
  Pager.reset_stats pager;
  let _ = Buffer_pool.read pool id in
  let _ = Buffer_pool.read pool id in
  let _ = Buffer_pool.read pool id in
  Alcotest.(check int) "one physical read" 1 (Pager.stats pager).Pager.reads;
  Alcotest.(check int) "hits" 2 (Buffer_pool.hits pool);
  Alcotest.(check int) "misses" 1 (Buffer_pool.misses pool)

(* Pages come back with the integrity trailer stamped by the storage
   layer; only the payload prefix carries caller data. *)
let payload buf = Bytes.sub buf 0 (Page.payload_size (Bytes.length buf))

let test_pool_write_back_on_evict () =
  let pager = Pager.create_memory ~page_size:64 () in
  let pool = Buffer_pool.create ~capacity:1 pager in
  let a = Buffer_pool.alloc pool and b = Buffer_pool.alloc pool in
  Buffer_pool.write pool a (Bytes.make 64 'a');
  (* Writing b evicts a, which must be flushed to the pager. *)
  Buffer_pool.write pool b (Bytes.make 64 'b');
  Alcotest.(check bytes) "a persisted on eviction"
    (payload (Bytes.make 64 'a'))
    (payload (Pager.read pager a))

let test_pool_flush () =
  let pager = Pager.create_memory ~page_size:64 () in
  let pool = Buffer_pool.create ~capacity:8 pager in
  let a = Buffer_pool.alloc pool in
  Buffer_pool.write pool a (Bytes.make 64 'q');
  Alcotest.(check bytes) "not yet written" (Bytes.make 64 '\000') (Pager.read pager a);
  Buffer_pool.flush pool;
  Alcotest.(check bytes) "flushed" (payload (Bytes.make 64 'q')) (payload (Pager.read pager a))

let test_pool_read_after_write_cached () =
  let pager = Pager.create_memory ~page_size:64 () in
  let pool = Buffer_pool.create ~capacity:8 pager in
  let a = Buffer_pool.alloc pool in
  Buffer_pool.write pool a (Bytes.make 64 'w');
  Alcotest.(check bytes) "cached read sees write" (Bytes.make 64 'w') (Buffer_pool.read pool a)

let test_pool_free_drops_cache () =
  let pager = Pager.create_memory ~page_size:64 () in
  let pool = Buffer_pool.create ~capacity:8 pager in
  let a = Buffer_pool.alloc pool in
  Buffer_pool.write pool a (Bytes.make 64 'x');
  Buffer_pool.free pool a;
  let a2 = Buffer_pool.alloc pool in
  Alcotest.(check int) "page reused" a a2;
  (* The stale dirty page must not resurface. *)
  Alcotest.(check bytes) "fresh read from pager" (Pager.read pager a2) (Buffer_pool.read pool a2)

let suite =
  [
    Alcotest.test_case "page: f64 roundtrip" `Quick test_page_f64_roundtrip;
    Alcotest.test_case "page: nan roundtrip" `Quick test_page_nan_roundtrip;
    Alcotest.test_case "page: i32 roundtrip" `Quick test_page_i32_roundtrip;
    Alcotest.test_case "page: i32 overflow" `Quick test_page_i32_overflow;
    Alcotest.test_case "page: u16/u8" `Quick test_page_u16_u8;
    Alcotest.test_case "pager: roundtrip" `Quick test_pager_roundtrip;
    Alcotest.test_case "pager: counters" `Quick test_pager_counters;
    Alcotest.test_case "pager: free and reuse" `Quick test_pager_free_reuse;
    Alcotest.test_case "pager: double free" `Quick test_pager_double_free;
    Alcotest.test_case "pager: bad id" `Quick test_pager_bad_id;
    Alcotest.test_case "pager: size mismatch" `Quick test_pager_size_mismatch;
    Alcotest.test_case "pager: file backend" `Quick test_pager_file_roundtrip;
    Alcotest.test_case "pager: closed" `Quick test_pager_closed;
    Alcotest.test_case "lru: eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru: update existing" `Quick test_lru_update_existing;
    Alcotest.test_case "lru: remove" `Quick test_lru_remove;
    Alcotest.test_case "lru: capacity one" `Quick test_lru_capacity_one;
    Alcotest.test_case "lru: stress vs model" `Quick test_lru_stress_against_model;
    Alcotest.test_case "pool: read-through caching" `Quick test_pool_read_through;
    Alcotest.test_case "pool: write-back on evict" `Quick test_pool_write_back_on_evict;
    Alcotest.test_case "pool: flush" `Quick test_pool_flush;
    Alcotest.test_case "pool: read after write" `Quick test_pool_read_after_write_cached;
    Alcotest.test_case "pool: free drops cache" `Quick test_pool_free_drops_cache;
  ]
