(* The resilience smoke matrix (`dune build @resilience-smoke`): a
   fault-rate sweep crossed with a deadline matrix, over both the
   single-domain and the batched query paths, with the invariants the
   online-resilience layer guarantees checked at every cell:

     - no uncaught exception ever escapes a resilient query;
     - every answer is a subset of the clean oracle (never invented);
     - partiality is never silent: an answer smaller than the oracle
       must carry a Partial/Timed_out label, and an unlabelled answer
       must equal the oracle exactly;
     - after `scrub --online` heals a damaged shadowed file, the same
       queries return Complete with the full oracle answer.

   Exits non-zero on any violation, printing one line per offence. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Deadline = Prt_util.Deadline
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Failpoint = Prt_storage.Failpoint
module Quarantine = Prt_storage.Quarantine
module Scrub = Prt_storage.Scrub
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Qexec = Prt_rtree.Qexec
module Index_file = Prt_rtree.Index_file
module Prtree = Prt_prtree.Prtree

let violations = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr violations;
      Printf.printf "VIOLATION: %s\n%!" s)
    fmt

let page_size = 512
let unit_square = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0

let random_rect rng =
  let x0 = Rng.float rng 1.0 and y0 = Rng.float rng 1.0 in
  let w = Rng.float rng 0.2 and h = Rng.float rng 0.2 in
  Rect.make ~xmin:x0 ~ymin:y0 ~xmax:(Float.min 1.0 (x0 +. w)) ~ymax:(Float.min 1.0 (y0 +. h))

let entries = Array.init 500 (fun i -> Entry.make (random_rect (Rng.create (1000 + i))) i)

let queries =
  let rng = Rng.create 77 in
  Array.init 25 (fun _ -> random_rect rng)

let oracle w =
  Array.to_list entries
  |> List.filter (fun e -> Rect.intersects (Entry.rect e) w)
  |> List.map Entry.id
  |> List.sort Int.compare

let ids_of hits = List.sort Int.compare (List.map Entry.id hits)

(* One matrix cell: a query ran and returned [hits]/[stats] — check the
   no-silent-partiality contract against the oracle. *)
let check_cell ~ctx w hits stats =
  let ids = ids_of hits in
  let truth = oracle w in
  if not (List.for_all (fun id -> List.mem id truth) ids) then
    fail "%s: answer not a subset of the oracle" ctx;
  let labelled = not (Rtree.complete stats) in
  if ids <> truth && not labelled then fail "%s: silent partiality (%d of %d ids)" ctx (List.length ids) (List.length truth);
  if labelled && Rtree.complete stats then fail "%s: contradictory label" ctx

(* --- the fault-rate x deadline matrix, single-domain path --- *)

let build_tree () =
  let base = Pager.create_memory ~page_size () in
  let pool = Buffer_pool.create ~capacity:4096 base in
  let tree = Prtree.load pool entries in
  Buffer_pool.flush pool;
  (base, tree)

let deadline_of = function
  | `None -> None
  | `Expired -> Some (Deadline.at 0.0)
  | `Generous -> Some (Deadline.after_ms 60_000.0)

let deadline_name = function
  | `None -> "no-deadline"
  | `Expired -> "expired"
  | `Generous -> "generous"

let run_matrix () =
  let rates = [ 0.0; 0.05; 0.2; 0.5 ] in
  let budgets = [ `None; `Expired; `Generous ] in
  List.iter
    (fun rate ->
      List.iter
        (fun budget ->
          let ctx = Printf.sprintf "rate=%.2f %s" rate (deadline_name budget) in
          let base, tree = build_tree () in
          let view =
            if rate > 0.0 then
              Pager.wrap_faulty base (Failpoint.create (Failpoint.uniform ~seed:4242 rate))
            else base
          in
          let qpool =
            Buffer_pool.create ~capacity:4096
              ~retry:{ Buffer_pool.attempts = 1; backoff_base = 1 }
              view
          in
          let qtree =
            Rtree.of_root ~pool:qpool ~root:(Rtree.root tree) ~height:(Rtree.height tree)
              ~count:(Rtree.count tree)
          in
          let quarantine = Quarantine.create () in
          Array.iter
            (fun w ->
              match
                Rtree.query_list ~quarantine ?deadline:(deadline_of budget) qtree w
              with
              | hits, stats ->
                  check_cell ~ctx w hits stats;
                  (match budget with
                  | `Expired when not stats.Rtree.timed_out ->
                      fail "%s: expired deadline not labelled timed-out" ctx
                  | `None when stats.Rtree.timed_out ->
                      fail "%s: timed out without a deadline" ctx
                  | _ -> ());
                  if rate = 0.0 && budget <> `Expired && not (Rtree.complete stats) then
                    fail "%s: degraded on a healthy device" ctx
              | exception e ->
                  fail "%s: uncaught exception %s" ctx (Printexc.to_string e))
            queries;
          if rate >= 0.2 && budget <> `Expired && Quarantine.count quarantine = 0 then
            fail "%s: high fault rate quarantined nothing" ctx)
        budgets)
    rates;
  Printf.printf "matrix: %d cells x %d queries checked\n%!"
    (List.length rates * List.length budgets)
    (Array.length queries)

(* --- the same matrix through the batched executor --- *)

let run_batched () =
  List.iter
    (fun rate ->
      let ctx = Printf.sprintf "qexec rate=%.2f" rate in
      let base, tree = build_tree () in
      let view =
        if rate > 0.0 then
          Pager.wrap_faulty base (Failpoint.create (Failpoint.uniform ~seed:7 rate))
        else base
      in
      (* read_shared on the batch path bypasses fault injection by
         design, so poison pages up front through the single-domain path
         and check the batch degrades around the quarantine. *)
      let qpool =
        Buffer_pool.create ~capacity:4096 ~retry:{ Buffer_pool.attempts = 1; backoff_base = 1 }
          view
      in
      let qtree =
        Rtree.of_root ~pool:qpool ~root:(Rtree.root tree) ~height:(Rtree.height tree)
          ~count:(Rtree.count tree)
      in
      let quarantine = Quarantine.create () in
      Array.iter (fun w -> ignore (Rtree.query_list ~quarantine qtree w)) queries;
      let exec = Qexec.create ~quarantine tree in
      (match Qexec.run ~jobs:2 exec queries with
      | results ->
          Array.iteri (fun i (hits, stats) -> check_cell ~ctx queries.(i) hits stats) results;
          (* Whatever the single-domain pass poisoned, the batch must
             route around: a full-window slot is degraded, not failed. *)
          if Quarantine.count quarantine > 0 then begin
            let _, s = (Qexec.run ~jobs:2 exec [| unit_square |]).(0) in
            if Rtree.complete s then fail "%s: batch ignored the shared quarantine" ctx
          end
      | exception e -> fail "%s: batch raised %s" ctx (Printexc.to_string e));
      (* An expired batch deadline labels every slot and raises nothing. *)
      match Qexec.run ~jobs:2 ~deadline:(Deadline.at 0.0) exec queries with
      | results ->
          Array.iter
            (fun (hits, stats) ->
              if not stats.Rtree.timed_out then fail "%s: expired batch slot unlabelled" ctx;
              if hits <> [] then fail "%s: expired batch slot returned entries" ctx)
            results
      | exception e -> fail "%s: expired batch raised %s" ctx (Printexc.to_string e))
    [ 0.0; 0.3 ];
  Printf.printf "batched path checked at 2 rates\n%!"

(* --- corrupt -> degrade -> heal -> complete, on disk --- *)

let run_lifecycle () =
  let path = Filename.temp_file "prt_resilience_smoke" ".idx" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let idx = Index_file.create ~shadow:true path ~build:(fun pool -> Prtree.load pool entries) in
      let leaves = ref [] in
      let tree = Index_file.tree idx in
      Rtree.iter_nodes tree ~f:(fun ~depth ~id _ ->
          if depth = Rtree.height tree then leaves := id :: !leaves);
      let victims = List.filteri (fun i _ -> i < 3) !leaves in
      let psize = Pager.page_size (Index_file.pager idx) in
      Index_file.close idx;
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      List.iter
        (fun id ->
          ignore (Unix.lseek fd ((id * psize) + 100) Unix.SEEK_SET);
          ignore (Unix.write fd (Bytes.make 8 'X') 0 8))
        victims;
      Unix.close fd;
      let idx = Index_file.open_ path in
      let q = Index_file.quarantine idx in
      (* degraded serve *)
      Array.iter
        (fun w ->
          match Rtree.query_list ~quarantine:q (Index_file.tree idx) w with
          | hits, stats -> check_cell ~ctx:"lifecycle/degraded" w hits stats
          | exception e -> fail "lifecycle: degraded query raised %s" (Printexc.to_string e))
        queries;
      let _, stats = Rtree.query_list ~quarantine:q (Index_file.tree idx) unit_square in
      if Rtree.complete stats then fail "lifecycle: corruption went unnoticed";
      (* heal *)
      let healed = ref 0 and wrapped = ref false in
      while not !wrapped do
        let r = Index_file.scrub_online ~pages:32 idx in
        healed := !healed + r.Scrub.on_healed;
        wrapped := r.Scrub.on_wrapped || r.Scrub.on_scanned = 0
      done;
      if !healed <> List.length victims then
        fail "lifecycle: healed %d of %d victims" !healed (List.length victims);
      if Quarantine.count q <> 0 then fail "lifecycle: quarantine not drained after heal";
      (* complete again *)
      Array.iter
        (fun w ->
          match Rtree.query_list ~quarantine:q (Index_file.tree idx) w with
          | hits, stats ->
              if not (Rtree.complete stats) then fail "lifecycle: still degraded after heal";
              if ids_of hits <> oracle w then fail "lifecycle: healed answer differs from oracle"
          | exception e -> fail "lifecycle: post-heal query raised %s" (Printexc.to_string e))
        queries;
      Index_file.close idx;
      Printf.printf "lifecycle: %d victims healed, answers restored\n%!" !healed)

let () =
  run_matrix ();
  run_batched ();
  run_lifecycle ();
  if !violations > 0 then begin
    Printf.printf "resilience smoke: %d violation(s)\n%!" !violations;
    exit 1
  end;
  Printf.printf "resilience smoke: all invariants held\n%!"
