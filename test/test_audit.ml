(* The unified invariant audit, tested from both sides.

   Positive: every variant the repository can build — the five in-memory
   bulk loaders, the external PR build, the dynamic tree, the kdB-tree
   on points, the d-dimensional PR-tree, and both in-memory pseudo-trees
   — audits clean, across sizes and page sizes, including the page-leak
   sweep where the tree owns the whole device.

   Mutation: corrupt one page of a built tree through the pager (below
   the buffer pool, which is dropped first so the cache cannot mask the
   damage) and assert the audit reports the *specific* invariant that
   byte broke, by its stable label — never a crash, never a clean
   report.  The page layout being poked: byte 0 kind, bytes 1-2 count
   (LE u16), then 36-byte entries at offset 3 (xmin/ymin/xmax/ymax as
   LE f64 at +0/+8/+16/+24, child page id or payload as LE i32 at
   +32). *)

module Rng = Prt_util.Rng
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Entry = Prt_rtree.Entry
module Node = Prt_rtree.Node
module Rtree = Prt_rtree.Rtree
module Audit = Prt_rtree.Audit
module Audit_nd = Prt_ndtree.Audit_nd

let labels (r : Audit.report) = List.map (fun v -> Audit.label v.Audit.what) r.Audit.violations

let assert_flags ?check_leaks tree expected =
  let r = Audit.check ?check_leaks tree in
  if not (List.mem expected (labels r)) then
    Alcotest.failf "expected a %s violation; audit said: %a" expected Audit.pp_report r

(* --- positive: everything the repo builds audits clean --- *)

let in_memory_variants =
  [
    ("pr", fun pool entries -> Prt_prtree.Prtree.load pool entries);
    ("h", fun pool entries -> Prt_rtree.Bulk_hilbert.load_h pool entries);
    ("h4", fun pool entries -> Prt_rtree.Bulk_hilbert.load_h4 pool entries);
    ("str", fun pool entries -> Prt_rtree.Bulk_str.load pool entries);
    ("tgs", fun pool entries -> Prt_rtree.Bulk_tgs.load pool entries);
  ]

let test_variants_audit_clean () =
  List.iter
    (fun (page_size, n) ->
      let entries = Helpers.random_entries ~n ~seed:(n + page_size) in
      List.iter
        (fun (vname, build) ->
          let pool = Buffer_pool.create ~capacity:4096 (Pager.create_memory ~page_size ()) in
          let tree = build pool entries in
          (* Fresh device, in-memory build: the tree owns every page, so
             the leak sweep runs with no exclusions. *)
          let r = Helpers.check_audit ~check_leaks:true tree in
          Alcotest.(check int) (vname ^ ": audited all entries") n r.Audit.entries)
        in_memory_variants)
    [ (512, 60); (512, 300); (4096, 500) ]

let test_ext_build_audits_clean () =
  let entries = Helpers.random_entries ~n:300 ~seed:3 in
  let pool = Helpers.small_pool () in
  let file = Entry.File.of_array (Buffer_pool.pager pool) entries in
  let tree = Prt_prtree.Ext_build.load ~mem_records:200 pool file in
  (* The record file shares the device, so no leak sweep here. *)
  ignore (Helpers.check_audit tree)

let test_dynamic_and_kdb_audit_clean () =
  let entries = Helpers.random_entries ~n:200 ~seed:5 in
  let dyn = Rtree.create_empty (Helpers.small_pool ()) in
  Array.iter (Prt_rtree.Dynamic.insert dyn) entries;
  ignore (Helpers.check_audit dyn);
  let points = Prt_workloads.Datasets.uniform_points ~n:200 ~seed:6 in
  ignore
    (Helpers.check_audit ~check_leaks:true (Prt_rtree.Kdbtree.load (Helpers.small_pool ()) points))

let test_empty_tree_audits_clean () =
  ignore (Helpers.check_audit ~check_leaks:true (Rtree.create_empty (Helpers.small_pool ())))

let test_fill_factor_floors () =
  (* STR packs leaves to capacity (last one exempt as the recursion's
     tail): a minimum fill of 2 must hold when the entry count tiles the
     slice grid exactly (25 full leaves in a 5x5 slicing). *)
  let cap = Prt_rtree.Node.capacity ~page_size:Helpers.small_page_size in
  let entries = Helpers.random_entries ~n:(25 * cap) ~seed:7 in
  let tree = Prt_rtree.Bulk_str.load (Helpers.small_pool ()) entries in
  let r = Audit.check ~min_leaf_fill:2 ~min_fanout:2 tree in
  if not (Audit.ok r) then Alcotest.failf "fill-floor audit failed: %a" Audit.pp_report r

(* d-dimensional mirror. *)
let random_entries_nd ~dims ~n ~seed =
  let rng = Rng.create seed in
  Array.init n (fun i ->
      let lo = Array.init dims (fun _ -> Rng.float rng 1.0) in
      let hi = Array.map (fun v -> Float.min 1.0 (v +. Rng.float rng 0.2)) lo in
      Prt_ndtree.Entry_nd.make (Prt_geom.Hyperrect.make ~lo ~hi) i)

let test_ndtree_audits_clean () =
  List.iter
    (fun dims ->
      let entries = random_entries_nd ~dims ~n:150 ~seed:dims in
      let tree = Prt_ndtree.Prtree_nd.load ~dims (Helpers.small_pool ()) entries in
      let r = Audit_nd.check ~check_leaks:true tree in
      if not (Audit.ok r) then
        Alcotest.failf "ndtree dims=%d audit failed: %a" dims Audit.pp_report r)
    [ 3; 4 ]

let test_pseudo_trees_audit_clean () =
  let entries = Helpers.random_entries ~n:200 ~seed:9 in
  (match Prt_prtree.Pseudo.audit ~b:14 (Prt_prtree.Pseudo.build ~b:14 entries) with
  | [] -> ()
  | vs ->
      Alcotest.failf "2-d pseudo-tree audit failed: %a"
        (Fmt.list ~sep:Fmt.cut Audit.pp_violation) vs);
  let entries_nd = random_entries_nd ~dims:3 ~n:200 ~seed:10 in
  match Audit_nd.check_pseudo ~b:14 ~dims:3 (Prt_ndtree.Pseudo_nd.build ~b:14 ~dims:3 entries_nd) with
  | [] -> ()
  | vs ->
      Alcotest.failf "3-d pseudo-tree audit failed: %a"
        (Fmt.list ~sep:Fmt.cut Audit.pp_violation) vs

(* check_pseudo's catalogue, case by case. *)
let test_check_pseudo_catalogue () =
  let mk ?(box_ok = true) kind = { Audit.pd_where = "n"; pd_kind = kind; pd_box_ok = box_ok } in
  let lbls descs =
    List.map
      (fun v -> Audit.label v.Audit.what)
      (Audit.check_pseudo ~degree_limit:6 ~leaf_capacity:4 descs)
  in
  let check = Alcotest.(check (list string)) in
  check "clean pseudo-tree" []
    (lbls
       [
         mk (Audit.Pseudo_node { degree = 6 });
         mk (Audit.Pseudo_leaf { size = 4; priority = Some 0; extreme = true });
       ]);
  check "degree bound" [ "degree-exceeded" ] (lbls [ mk (Audit.Pseudo_node { degree = 7 }) ]);
  check "leaf overflow" [ "node-overflow" ]
    (lbls [ mk (Audit.Pseudo_leaf { size = 5; priority = None; extreme = true }) ]);
  check "extremeness" [ "priority-not-extreme" ]
    (lbls [ mk (Audit.Pseudo_leaf { size = 2; priority = Some 3; extreme = false }) ]);
  check "box consistency" [ "box-mismatch" ]
    (lbls [ mk ~box_ok:false (Audit.Pseudo_node { degree = 2 }) ]);
  check "empty node" [ "empty-node" ] (lbls [ mk (Audit.Pseudo_node { degree = 0 }) ])

(* --- mutation: one corrupted byte, one named violation --- *)

(* A 300-entry PR-tree on 512-byte pages: 22 full-ish leaves, two
   internal nodes above them, height 3 — the root is internal with at
   least two children, which the mutations below rely on. *)
let build_victim () =
  let pool = Helpers.small_pool () in
  let entries = Helpers.random_entries ~n:300 ~seed:42 in
  let tree = Prt_prtree.Prtree.load pool entries in
  Buffer_pool.flush pool;
  (pool, tree)

(* Mutate page [id] below the buffer pool; the cache is emptied first so
   the audit really reads the corrupted bytes. *)
let corrupt pool id f =
  Buffer_pool.drop_clean pool;
  let pager = Buffer_pool.pager pool in
  let buf = Pager.read pager id in
  f buf;
  Pager.write pager id buf

let entry_off i field = 3 + (i * 36) + field
let get_f64 buf off = Int64.float_of_bits (Bytes.get_int64_le buf off)
let set_f64 buf off v = Bytes.set_int64_le buf off (Int64.bits_of_float v)

let rec first_leaf tree id =
  let node = Rtree.read_node tree id in
  match Node.kind node with
  | Node.Leaf -> id
  | Node.Internal -> first_leaf tree (Entry.id (Node.entries node).(0))

let test_mutation_decode_error () =
  let pool, tree = build_victim () in
  corrupt pool (Rtree.root tree) (fun buf -> Bytes.set buf 0 '\007');
  assert_flags tree "decode-error"

let test_mutation_count_mismatch () =
  let pool, tree = build_victim () in
  let leaf = first_leaf tree (Rtree.root tree) in
  corrupt pool leaf (fun buf ->
      Bytes.set_uint16_le buf 1 (Bytes.get_uint16_le buf 1 - 1));
  assert_flags tree "count-mismatch"

let test_mutation_mbr_not_tight () =
  let pool, tree = build_victim () in
  corrupt pool (Rtree.root tree) (fun buf ->
      let off = entry_off 0 16 in
      set_f64 buf off (get_f64 buf off +. 1.0));
  assert_flags tree "mbr-not-tight"

let test_mutation_mbr_not_contained () =
  let pool, tree = build_victim () in
  corrupt pool (Rtree.root tree) (fun buf ->
      let xmin = get_f64 buf (entry_off 0 0) and xmax = get_f64 buf (entry_off 0 16) in
      (* Shrink the recorded box: it was tight, so the child's exact box
         now escapes it. *)
      set_f64 buf (entry_off 0 16) ((xmin +. xmax) /. 2.0));
  assert_flags tree "mbr-not-contained"

let test_mutation_page_shared () =
  let pool, tree = build_victim () in
  corrupt pool (Rtree.root tree) (fun buf ->
      Bytes.set_int32_le buf (entry_off 1 32) (Bytes.get_int32_le buf (entry_off 0 32)));
  assert_flags tree "page-shared"

let test_mutation_leaf_depth () =
  let pool, tree = build_victim () in
  let leaf = first_leaf tree (Rtree.root tree) in
  (* Point a root entry straight at a grandchild leaf: it now sits at
     depth 2 in a height-3 tree. *)
  corrupt pool (Rtree.root tree) (fun buf ->
      Bytes.set_int32_le buf (entry_off 0 32) (Int32.of_int leaf));
  assert_flags tree "leaf-depth"

let test_mutation_page_leaked () =
  let pool, tree = build_victim () in
  Buffer_pool.drop_clean pool;
  ignore (Pager.alloc (Buffer_pool.pager pool));
  assert_flags ~check_leaks:true tree "page-leaked"

let test_mutation_freed_page_reachable () =
  let pool, tree = build_victim () in
  let leaf = first_leaf tree (Rtree.root tree) in
  Buffer_pool.drop_clean pool;
  Pager.free (Buffer_pool.pager pool) leaf;
  assert_flags tree "freed-page-reachable"

let suite =
  [
    Alcotest.test_case "all in-memory variants audit clean (sizes x pages)" `Quick
      test_variants_audit_clean;
    Alcotest.test_case "external PR build audits clean" `Quick test_ext_build_audits_clean;
    Alcotest.test_case "dynamic tree and kdB-tree audit clean" `Quick
      test_dynamic_and_kdb_audit_clean;
    Alcotest.test_case "empty tree audits clean" `Quick test_empty_tree_audits_clean;
    Alcotest.test_case "fill-factor floors hold for STR" `Quick test_fill_factor_floors;
    Alcotest.test_case "nd PR-trees audit clean (3-d, 4-d)" `Quick test_ndtree_audits_clean;
    Alcotest.test_case "pseudo-trees audit clean (2-d, 3-d)" `Quick test_pseudo_trees_audit_clean;
    Alcotest.test_case "check_pseudo catalogue" `Quick test_check_pseudo_catalogue;
    Alcotest.test_case "mutation: bad kind byte -> decode-error" `Quick test_mutation_decode_error;
    Alcotest.test_case "mutation: leaf count -> count-mismatch" `Quick
      test_mutation_count_mismatch;
    Alcotest.test_case "mutation: grown MBR -> mbr-not-tight" `Quick test_mutation_mbr_not_tight;
    Alcotest.test_case "mutation: shrunk MBR -> mbr-not-contained" `Quick
      test_mutation_mbr_not_contained;
    Alcotest.test_case "mutation: duplicated child -> page-shared" `Quick
      test_mutation_page_shared;
    Alcotest.test_case "mutation: shortcut to leaf -> leaf-depth" `Quick test_mutation_leaf_depth;
    Alcotest.test_case "mutation: stray allocation -> page-leaked" `Quick
      test_mutation_page_leaked;
    Alcotest.test_case "mutation: freed leaf -> freed-page-reachable" `Quick
      test_mutation_freed_page_reachable;
  ]
