(* Tests for the util substrate: RNG, selection, priority queue,
   statistics, table rendering. *)

module Rng = Prt_util.Rng
module Select = Prt_util.Select
module Pqueue = Prt_util.Pqueue
module Stats = Prt_util.Stats
module Table = Prt_util.Table

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.next_int64 a) (Rng.next_int64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_bad_bound () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.5 in
    Alcotest.(check bool) "in [0,3.5)" true (v >= 0.0 && v < 3.5)
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xa = Rng.next_int64 a and xb = Rng.next_int64 b in
  Alcotest.(check bool) "split streams differ" false (Int64.equal xa xb)

let test_rng_int_covers_values () =
  let rng = Rng.create 3 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Rng.int rng 4) <- true
  done;
  Alcotest.(check bool) "all residues seen" true (Array.for_all Fun.id seen)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let prop_gaussian_moments =
  QCheck.Test.make ~name:"gaussian has roughly standard moments" ~count:5
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 5000 in
      let values = Array.init n (fun _ -> Rng.gaussian rng) in
      let mean = Stats.mean values and sd = Stats.stddev values in
      Float.abs mean < 0.1 && Float.abs (sd -. 1.0) < 0.1)

(* --- Select --- *)

let prop_select_matches_sort =
  QCheck.Test.make ~name:"select yields the sorted order statistic" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 60) int) small_nat)
    (fun (l, k) ->
      let arr = Array.of_list l in
      let n = Array.length arr in
      let k = k mod n in
      let v = Select.select ~cmp:Int.compare (Array.copy arr) 0 n k in
      let sorted = Array.copy arr in
      Array.sort Int.compare sorted;
      v = sorted.(k))

let prop_smallest_to_front =
  QCheck.Test.make ~name:"smallest_to_front moves the k smallest" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 60) int) small_nat)
    (fun (l, k) ->
      let arr = Array.of_list l in
      let n = Array.length arr in
      let k = k mod (n + 1) in
      Select.smallest_to_front ~cmp:Int.compare arr 0 n k;
      let front = Array.sub arr 0 k and rest = Array.sub arr k (n - k) in
      Array.sort Int.compare front;
      let sorted = Array.of_list l in
      Array.sort Int.compare sorted;
      (* Front holds the k smallest (as a multiset)... *)
      front = Array.sub sorted 0 k
      (* ...and everything in the back is >= everything in front. *)
      && (k = 0 || Array.for_all (fun v -> v >= front.(k - 1)) rest))

let prop_partition_preserves_multiset =
  QCheck.Test.make ~name:"partition_at permutes the range" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 60) int) small_nat)
    (fun (l, k) ->
      let arr = Array.of_list l in
      let n = Array.length arr in
      let k = k mod n in
      Select.partition_at ~cmp:Int.compare arr 0 n k;
      let after = Array.copy arr and before = Array.of_list l in
      Array.sort Int.compare after;
      Array.sort Int.compare before;
      after = before)

let test_select_subrange () =
  let arr = [| 100; 5; 3; 9; 1; 7; -100 |] in
  (* Select within [1, 6): the sorted subrange is [1;3;5;7;9], so
     absolute index 3 holds rank 2 of the subrange, i.e. 5. *)
  let v = Select.select ~cmp:Int.compare arr 1 6 3 in
  Alcotest.(check int) "rank within subrange" 5 v;
  Alcotest.(check int) "untouched left sentinel" 100 arr.(0);
  Alcotest.(check int) "untouched right sentinel" (-100) arr.(6)

let test_select_duplicates () =
  let arr = Array.make 20 5 in
  Alcotest.(check int) "all equal" 5 (Select.select ~cmp:Int.compare arr 0 20 10)

let test_median () =
  let arr = [| 5; 2; 8; 1; 9 |] in
  Alcotest.(check int) "median" 5 (Select.median ~cmp:Int.compare arr 0 5);
  let arr2 = [| 4; 1; 3; 2 |] in
  Alcotest.(check int) "lower median" 2 (Select.median ~cmp:Int.compare arr2 0 4)

let test_select_bad_range () =
  Alcotest.check_raises "empty range" (Invalid_argument "Select.select: index out of range")
    (fun () -> ignore (Select.select ~cmp:Int.compare [| 1 |] 0 0 0))

(* --- Pqueue --- *)

let prop_heapsort =
  QCheck.Test.make ~name:"pqueue drains in sorted order" ~count:200
    QCheck.(list int)
    (fun l ->
      let q = Pqueue.create Int.compare in
      List.iter (Pqueue.add q) l;
      let rec drain acc = match Pqueue.pop q with Some x -> drain (x :: acc) | None -> List.rev acc in
      drain [] = List.sort Int.compare l)

let test_pqueue_empty () =
  let q = Pqueue.create Int.compare in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty q);
  Alcotest.(check (option int)) "pop empty" None (Pqueue.pop q);
  Alcotest.(check (option int)) "peek empty" None (Pqueue.peek q);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Pqueue.pop_exn: empty") (fun () ->
      ignore (Pqueue.pop_exn q))

let test_pqueue_peek () =
  let q = Pqueue.create Int.compare in
  Pqueue.add q 5;
  Pqueue.add q 2;
  Pqueue.add q 9;
  Alcotest.(check (option int)) "peek min" (Some 2) (Pqueue.peek q);
  Alcotest.(check int) "length" 3 (Pqueue.length q)

let test_pqueue_floats () =
  (* Exercises the lazily-allocated backing array with unboxed floats. *)
  let q = Pqueue.create Float.compare in
  List.iter (Pqueue.add q) [ 3.5; -1.0; 0.25 ];
  Alcotest.(check (option (float 0.0))) "min float" (Some (-1.0)) (Pqueue.pop q)

(* --- Stats --- *)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "total" 10.0 s.Stats.total;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 s.Stats.stddev

let test_stats_empty () =
  let s = Stats.summarize [||] in
  Alcotest.(check int) "n" 0 s.Stats.n;
  Alcotest.(check (float 0.0)) "mean" 0.0 s.Stats.mean

let test_percentile () =
  let v = [| 10.0; 20.0; 30.0; 40.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 10.0 (Stats.percentile v 0.0);
  Alcotest.(check (float 1e-9)) "p100" 40.0 (Stats.percentile v 100.0);
  Alcotest.(check (float 1e-9)) "p50" 25.0 (Stats.percentile v 50.0)

let test_percentile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile [||] 50.0))

(* --- Table --- *)

let test_table_render () =
  let out = Table.render ~header:[ "name"; "count" ] [ [ "alpha"; "12" ]; [ "b"; "3" ] ] in
  Alcotest.(check bool) "contains header" true (String.length out > 0);
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: _ ->
      Alcotest.(check bool) "header starts with name" true
        (String.length header >= 4 && String.sub header 0 4 = "name")
  | [] -> Alcotest.fail "no output");
  (* Numeric column is right-aligned: "12" under "count" ends the line. *)
  let row = List.nth lines 2 in
  Alcotest.(check bool) "right-aligned numeric" true
    (String.length row > 0 && row.[String.length row - 1] = '2')

let suite =
  [
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng: int range" `Quick test_rng_int_range;
    Alcotest.test_case "rng: int bad bound" `Quick test_rng_int_rejects_bad_bound;
    Alcotest.test_case "rng: float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: int covers values" `Quick test_rng_int_covers_values;
    Alcotest.test_case "rng: shuffle permutation" `Quick test_rng_shuffle_permutation;
    Helpers.qcheck_case prop_gaussian_moments;
    Helpers.qcheck_case prop_select_matches_sort;
    Helpers.qcheck_case prop_smallest_to_front;
    Helpers.qcheck_case prop_partition_preserves_multiset;
    Alcotest.test_case "select: subrange" `Quick test_select_subrange;
    Alcotest.test_case "select: duplicates" `Quick test_select_duplicates;
    Alcotest.test_case "select: median" `Quick test_median;
    Alcotest.test_case "select: bad range" `Quick test_select_bad_range;
    Helpers.qcheck_case prop_heapsort;
    Alcotest.test_case "pqueue: empty" `Quick test_pqueue_empty;
    Alcotest.test_case "pqueue: peek/length" `Quick test_pqueue_peek;
    Alcotest.test_case "pqueue: floats" `Quick test_pqueue_floats;
    Alcotest.test_case "stats: summary" `Quick test_stats_summary;
    Alcotest.test_case "stats: empty" `Quick test_stats_empty;
    Alcotest.test_case "stats: percentile" `Quick test_percentile;
    Alcotest.test_case "stats: percentile errors" `Quick test_percentile_errors;
    Alcotest.test_case "table: render" `Quick test_table_render;
  ]
