(* The serving-tier chaos matrix, run by `dune build @serve-smoke` (and
   under @runtest-long; the bench half of the alias runs the serve
   experiment against its committed baseline in bench/dune).

   Four sections, every one ending with a no-leaked-pins check:

   - chaos matrix: servers under a seeded Failpoint schedule (peer
     resets, short reads, stalled and torn writes) driven over injected
     socketpairs by scripted clients — queries, health checks, a
     garbage frame, a mid-frame disconnect.  Nothing may escape a
     connection, and a drain must always terminate.
   - kill-point sweep: a crash budget of 0..5 physical socket writes;
     the simulated process death mid-reply must leave no snapshot pins
     and an index that still answers oracle-correct queries.
   - drain under load: a real Unix-socket server on its own domain,
     drained while a multi-domain load generator is mid-replay; every
     client request must be accounted for (answered, retried away, or
     typed-rejected) with zero protocol errors.
   - quota retries: a refilling per-connection bucket small enough that
     every batch but the first is rejected at least once; the load
     generator's hint-driven backoff must land every request. *)

module Rect = Prt_geom.Rect
module Rng = Prt_util.Rng
module Failpoint = Prt_storage.Failpoint
module Superblock = Prt_storage.Superblock
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Index_file = Prt_rtree.Index_file
module Prtree = Prt_prtree.Prtree
module Wire = Prt_serve.Wire
module Server = Prt_serve.Server
module Client = Prt_serve.Client
module Load_gen = Prt_serve.Load_gen

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("serve_smoke: FAIL: " ^ s); exit 1) fmt

let random_rect rng =
  let x0 = Rng.float rng 1.0 and y0 = Rng.float rng 1.0 in
  let w = Rng.float rng 0.2 and h = Rng.float rng 0.2 in
  Rect.make ~xmin:x0 ~ymin:y0 ~xmax:(Float.min 1.0 (x0 +. w)) ~ymax:(Float.min 1.0 (y0 +. h))

let make_entries ~n ~seed =
  let rng = Rng.create seed in
  Array.init n (fun i -> Entry.make (random_rect rng) i)

let make_windows ~n ~seed =
  let rng = Rng.create seed in
  Array.init n (fun _ -> random_rect rng)

let with_index ~n ~seed f =
  let path = Filename.temp_file "prt_serve_smoke" ".idx" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) @@ fun () ->
  let es = make_entries ~n ~seed in
  let idx = Index_file.create path ~build:(fun pool -> Prtree.load pool es) in
  Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
  let r = f idx es in
  let pins = Superblock.pin_count (Index_file.superblock idx) in
  if pins <> 0 then fail "leaked %d snapshot pin(s)" pins;
  r

let socket_path =
  let k = ref 0 in
  fun () ->
    incr k;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "prt_smoke_%d_%d.sock" (Unix.getpid ()) !k)

(* --- scripted socketpair clients (the injected, listenerless path) --- *)

type client = {
  fd : Unix.file_descr;
  reader : Wire.Reader.t;
  mutable eof : bool;
  mutable replies : int;
  mutable errors : int;  (* typed Wire.Error replies among them *)
}

let connect srv =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Server.inject srv a;
  Unix.set_nonblock b;
  { fd = b; reader = Wire.Reader.create (); eof = false; replies = 0; errors = 0 }

let send c frame =
  try ignore (Unix.write c.fd frame 0 (Bytes.length frame))
  with
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let poll c =
  let buf = Bytes.create 65536 in
  (try
     let rec go () =
       match Unix.read c.fd buf 0 (Bytes.length buf) with
       | 0 -> c.eof <- true
       | r ->
           Wire.Reader.feed c.reader buf 0 r;
           go ()
     in
     go ()
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> c.eof <- true);
  let rec drain () =
    match Wire.Reader.next c.reader with
    | `Msg (Wire.Reply (Wire.Error _)) ->
        c.errors <- c.errors + 1;
        c.replies <- c.replies + 1;
        drain ()
    | `Msg (Wire.Reply _) ->
        c.replies <- c.replies + 1;
        drain ()
    | `Msg (Wire.Request _) -> fail "server sent a request kind"
    | `Need_more | `Error _ -> ()
  in
  drain ()

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* --- 1. chaos matrix --- *)

let chaos_case ~seed ~rate =
  with_index ~n:250 ~seed:7 @@ fun idx _es ->
  let chaos = Failpoint.create (Failpoint.uniform ~seed ~max_consecutive:3 rate) in
  let config =
    {
      Server.default_config with
      Server.max_queue = 64;
      max_windows = 16;
      quota_rate = 50.0;
      quota_burst = 12.0;
    }
  in
  let srv = Server.create ~chaos ~config idx in
  let clients = List.init 3 (fun _ -> connect srv) in
  let qs = make_windows ~n:4 ~seed:(seed + 1) in
  List.iteri
    (fun i c ->
      for k = 0 to 5 do
        send c
          (Wire.encode
             (Wire.Request
                (Wire.Query
                   {
                     id = (i * 100) + k;
                     deadline_ms = (if k mod 3 = 0 then 5 else 0);
                     windows = qs;
                   })));
        ignore (Server.step srv ~timeout:0.0);
        poll c
      done;
      send c (Wire.encode (Wire.Request (Wire.Health_check { id = (i * 100) + 99 }))))
    clients;
  let hostile = connect srv in
  send hostile (Bytes.make 24 '\231');
  let half = connect srv in
  let frame = Wire.encode (Wire.Request (Wire.Query { id = 7; deadline_ms = 0; windows = qs })) in
  send half (Bytes.sub frame 0 (Bytes.length frame - 3));
  for _ = 1 to 60 do
    ignore (Server.step srv ~timeout:0.0);
    List.iter poll clients;
    poll hostile
  done;
  close_client half;
  Server.request_drain srv;
  let steps = ref 0 in
  while Server.step srv ~timeout:0.0 && !steps < 1000 do
    incr steps;
    List.iter poll clients
  done;
  if !steps >= 1000 then fail "drain did not terminate (seed %d rate %.2f)" seed rate;
  List.iter close_client (hostile :: clients);
  let r = Server.report srv in
  if r.Server.closed < r.Server.accepted then
    fail "chaos seed %d: %d accepted but only %d closed" seed r.Server.accepted r.Server.closed;
  let replies = List.fold_left (fun a c -> a + c.replies) 0 (hostile :: clients) in
  let sheds =
    r.Server.shed_overload + r.Server.shed_quota + r.Server.shed_deadline
    + r.Server.shed_draining
  in
  Printf.printf
    "  chaos seed=%d rate=%.2f: accepted=%d served=%d sheds=%d malformed=%d io-closed=%d \
     slow-closed=%d replies=%d\n\
     %!"
    seed rate r.Server.accepted r.Server.served sheds r.Server.malformed r.Server.io_closed
    r.Server.slow_closed replies

(* --- 2. kill-point sweep --- *)

let kill_sweep () =
  let crashes = ref 0 in
  for k = 0 to 5 do
    with_index ~n:250 ~seed:7 @@ fun idx es ->
    let chaos = Failpoint.create (Failpoint.crash_after k) in
    let srv = Server.create ~chaos idx in
    let c = connect srv in
    let qs = make_windows ~n:3 ~seed:21 in
    for i = 1 to 6 do
      send c (Wire.encode (Wire.Request (Wire.Query { id = i; deadline_ms = 0; windows = qs })))
    done;
    (try
       for _ = 1 to 100 do
         ignore (Server.step srv ~timeout:0.0);
         poll c
       done
     with Failpoint.Simulated_crash _ ->
       incr crashes;
       (* The crash modelled process death mid-reply; the index must
          still answer oracle-correct queries, with nothing pinned
          (checked by [with_index]). *)
       let tree = Index_file.tree idx in
       Array.iter
         (fun w ->
           let expected =
             Array.to_list es
             |> List.filter (fun e -> Rect.intersects (Entry.rect e) w)
             |> List.map Entry.id |> List.sort Int.compare
           in
           let got =
             fst (Rtree.query_list tree w) |> List.map Entry.id |> List.sort Int.compare
           in
           if got <> expected then fail "post-crash query mismatch at kill point %d" k)
         qs);
    close_client c
  done;
  if !crashes = 0 then fail "no kill point fired in the sweep";
  Printf.printf "  kill points: %d of 6 write budgets crashed mid-reply, index intact after each\n%!"
    !crashes

(* --- 3. drain under load --- *)

let drain_under_load () =
  with_index ~n:2_000 ~seed:3 @@ fun idx _es ->
  let config = { Server.default_config with Server.max_queue = 1024 } in
  let srv = Server.create ~config idx in
  let path = socket_path () in
  Server.listen_unix srv path;
  let dom = Domain.spawn (fun () -> Server.run ~step_timeout:0.005 srv) in
  let qs = make_windows ~n:400 ~seed:31 in
  let cfg =
    {
      (Load_gen.default_config ~connect:(fun () -> Client.connect_unix path)) with
      Load_gen.concurrency = 3;
      batch = 4;
      max_retries = 2;
      base_backoff_ms = 1.0;
      max_backoff_ms = 5.0;
    }
  in
  let load = Domain.spawn (fun () -> Load_gen.run cfg qs) in
  Unix.sleepf 0.05;
  Server.request_drain srv;
  let stats = Domain.join load in
  let report = Domain.join dom in
  (try Sys.remove path with Sys_error _ -> ());
  if stats.Load_gen.protocol_errors <> 0 then
    fail "drain under load: %d protocol errors" stats.Load_gen.protocol_errors;
  let accounted =
    stats.Load_gen.ok + stats.Load_gen.gave_up + stats.Load_gen.rejected_deadline
    + stats.Load_gen.rejected_draining + stats.Load_gen.rejected_other
  in
  if accounted <> stats.Load_gen.sent then
    fail "drain under load: %d of %d requests unaccounted for" (stats.Load_gen.sent - accounted)
      stats.Load_gen.sent;
  Printf.printf "  drain under load: client %s\n                    server %s\n%!"
    (Format.asprintf "%a" Load_gen.pp_stats stats)
    (Format.asprintf "%a" Server.pp_report report)

(* --- 4. quota retries --- *)

let quota_retries () =
  with_index ~n:2_000 ~seed:3 @@ fun idx _es ->
  let config =
    { Server.default_config with Server.quota_rate = 2_000.0; quota_burst = 8.0 }
  in
  let srv = Server.create ~config idx in
  let path = socket_path () in
  Server.listen_unix srv path;
  let dom = Domain.spawn (fun () -> Server.run ~step_timeout:0.005 srv) in
  let qs = make_windows ~n:96 ~seed:41 in
  let cfg =
    {
      (Load_gen.default_config ~connect:(fun () -> Client.connect_unix path)) with
      Load_gen.concurrency = 2;
      batch = 8;
      max_retries = 10;
    }
  in
  let stats = Load_gen.run cfg qs in
  Server.request_drain srv;
  let report = Domain.join dom in
  (try Sys.remove path with Sys_error _ -> ());
  if stats.Load_gen.ok <> stats.Load_gen.sent then
    fail "quota retries: only %d of %d batches eventually admitted" stats.Load_gen.ok
      stats.Load_gen.sent;
  if stats.Load_gen.retries = 0 then fail "quota retries: bucket never pushed back";
  if report.Server.shed_quota = 0 then fail "quota retries: server shed nothing";
  Printf.printf "  quota retries: %d batches all admitted after %d hint-driven retries (%d shed)\n%!"
    stats.Load_gen.ok stats.Load_gen.retries report.Server.shed_quota

let () =
  Printf.printf "== serve smoke: chaos matrix over the network query tier ==\n%!";
  List.iter (fun rate -> List.iter (fun seed -> chaos_case ~seed ~rate) [ 1; 2; 3; 4 ])
    [ 0.1; 0.3 ];
  kill_sweep ();
  drain_under_load ();
  quota_retries ();
  Printf.printf "serve smoke: ok\n%!"
