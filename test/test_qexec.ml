(* The batched multicore query executor and its supporting layers: the
   sharded node cache (generation keying, pruning, eviction, stats), the
   zero-copy node cursors, executor-vs-sequential equivalence, and the
   buffer pool's one-miss-per-logical-read accounting. *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Shard_cache = Prt_storage.Shard_cache
module Failpoint = Prt_storage.Failpoint
module Entry = Prt_rtree.Entry
module Node = Prt_rtree.Node
module Rtree = Prt_rtree.Rtree
module Qexec = Prt_rtree.Qexec
module Index_file = Prt_rtree.Index_file
module Dynamic = Prt_rtree.Dynamic
module Prtree = Prt_prtree.Prtree

let with_temp f =
  let path = Filename.temp_file "prt_qexec" ".idx" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* --- shard cache --- *)

let test_cache_basics () =
  let c = Shard_cache.create ~shards:4 ~capacity:64 () in
  let decodes = ref 0 in
  let get id = Shard_cache.find_or_add c ~gen:0 id (fun () -> incr decodes; id * 10) in
  Alcotest.(check int) "decoded value" 70 (get 7);
  Alcotest.(check int) "cached value" 70 (get 7);
  Alcotest.(check int) "one decode" 1 !decodes;
  Alcotest.(check (option int)) "find hit" (Some 70) (Shard_cache.find c ~gen:0 7);
  Alcotest.(check (option int)) "find other generation" None (Shard_cache.find c ~gen:1 7);
  let s = Shard_cache.stats c in
  Alcotest.(check int) "hits" 2 s.Shard_cache.st_hits;
  Alcotest.(check int) "misses" 1 s.Shard_cache.st_misses;
  Alcotest.(check int) "entries" 1 s.Shard_cache.st_entries

(* Generations coexist: a snapshot reader pinned to an old generation
   keeps its entries while newer ones land beside them; reclamation is
   explicit via [prune] with the pin floor. *)
let test_cache_generation_coexistence_and_prune () =
  let c = Shard_cache.create ~shards:1 ~capacity:16 () in
  let v1 = Shard_cache.find_or_add c ~gen:1 3 (fun () -> "old") in
  let v2 = Shard_cache.find_or_add c ~gen:2 3 (fun () -> "new") in
  let v3 = Shard_cache.find_or_add c ~gen:2 3 (fun () -> "newer") in
  Alcotest.(check string) "gen 1 decode" "old" v1;
  Alcotest.(check string) "gen 2 decode" "new" v2;
  Alcotest.(check string) "gen 2 cached" "new" v3;
  Alcotest.(check (option string)) "gen 1 still served" (Some "old") (Shard_cache.find c ~gen:1 3);
  Alcotest.(check int) "both generations live" 2 (Shard_cache.stats c).Shard_cache.st_entries;
  (* Pin floor rises to 2: generation-1 entries are reclaimed. *)
  Alcotest.(check int) "pruned" 1 (Shard_cache.prune c ~older_than:2);
  Alcotest.(check (option string)) "gen 1 gone" None (Shard_cache.find c ~gen:1 3);
  Alcotest.(check (option string)) "gen 2 kept" (Some "new") (Shard_cache.find c ~gen:2 3);
  let s = Shard_cache.stats c in
  Alcotest.(check int) "prune counted as invalidation" 1 s.Shard_cache.st_invalidations;
  Alcotest.(check int) "one live entry" 1 s.Shard_cache.st_entries;
  Alcotest.(check int) "prune below floor is a no-op" 0 (Shard_cache.prune c ~older_than:2)

let test_cache_eviction () =
  (* One shard of capacity 4: inserting more evicts FIFO, and the live
     entry count never exceeds the capacity. *)
  let c = Shard_cache.create ~shards:1 ~capacity:4 () in
  for id = 0 to 9 do
    ignore (Shard_cache.find_or_add c ~gen:0 id (fun () -> id))
  done;
  let s = Shard_cache.stats c in
  Alcotest.(check int) "entries bounded" 4 s.Shard_cache.st_entries;
  Alcotest.(check int) "evictions" 6 s.Shard_cache.st_evictions;
  (* The oldest ids are gone, the newest survive. *)
  Alcotest.(check (option int)) "id 0 evicted" None (Shard_cache.find c ~gen:0 0);
  Alcotest.(check (option int)) "id 9 live" (Some 9) (Shard_cache.find c ~gen:0 9)

(* Many domains hammering one cache: every id decodes exactly once
   (decode runs under the shard lock) and every probe sees the right
   value. *)
let test_cache_concurrent_decode_once () =
  let c = Shard_cache.create ~shards:8 ~capacity:1024 () in
  let decodes = Atomic.make 0 in
  let ids = 50 in
  let worker () =
    for round = 0 to 19 do
      ignore round;
      for id = 0 to ids - 1 do
        let v =
          Shard_cache.find_or_add c ~gen:0 id (fun () ->
              Atomic.incr decodes;
              id * 3)
        in
        if v <> id * 3 then failwith "wrong cached value"
      done
    done
  in
  let domains = Array.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  Alcotest.(check int) "each id decoded exactly once" ids (Atomic.get decodes);
  let s = Shard_cache.stats c in
  Alcotest.(check int) "misses = distinct ids" ids s.Shard_cache.st_misses

(* --- zero-copy cursors --- *)

let test_iter_rects_matches_decode () =
  let entries = Helpers.random_entries ~n:13 ~seed:7 in
  let page_size = Helpers.small_page_size in
  let buf = Node.encode ~page_size (Node.make Node.Leaf entries) in
  let windows = Helpers.random_queries ~n:30 ~seed:8 in
  Array.iter
    (fun w ->
      let expected =
        Array.to_list entries |> List.filter (fun e -> Rect.intersects (Entry.rect e) w)
      in
      let got = ref [] in
      let hits = Node.iter_rects buf w ~f:(fun e -> got := e :: !got) in
      Alcotest.(check int) "hit count" (List.length expected) hits;
      Alcotest.(check bool) "same entries in page order" true (List.rev !got = expected);
      (* The child-id cursor agrees on which entries intersect. *)
      let kids = ref [] in
      Node.iter_children buf w ~f:(fun id -> kids := id :: !kids);
      Alcotest.(check (list int))
        "children ids" (List.map Entry.id expected) (List.rev !kids))
    windows;
  Alcotest.(check int) "page_length" 13 (Node.page_length buf);
  Alcotest.(check bool) "page_kind" true (Node.page_kind buf = Node.Leaf)

(* --- executor vs sequential --- *)

let batch_equal tree exec ~jobs queries =
  let par = Qexec.run ~jobs exec queries in
  Array.iteri
    (fun i w ->
      let seq_hits, seq_stats = Rtree.query_list tree w in
      let par_hits, par_stats = par.(i) in
      if seq_hits <> par_hits then failwith (Printf.sprintf "query %d: entry lists differ" i);
      if seq_stats <> par_stats then failwith (Printf.sprintf "query %d: stats differ" i))
    queries;
  true

let qcheck_executor_matches_sequential =
  QCheck.Test.make ~name:"qexec batch identical to sequential query loop" ~count:25
    (QCheck.pair
       (Helpers.arbitrary_scenario ~max_size:2_000 ())
       (QCheck.oneofl ~print:string_of_int [ 1; 2; 4 ]))
    (fun (sc, jobs) ->
      let n = sc.Helpers.sc_size and seed = sc.Helpers.sc_seed in
      let entries = Helpers.random_entries ~n ~seed in
      let tree = Prtree.load (Helpers.small_pool ()) entries in
      let queries = Helpers.random_queries ~n:20 ~seed:(seed + 1) in
      let exec = Qexec.create tree in
      batch_equal tree exec ~jobs queries)

let test_executor_deterministic_across_jobs () =
  let entries = Helpers.random_entries ~n:3_000 ~seed:21 in
  let tree = Prtree.load (Helpers.small_pool ()) entries in
  let queries = Helpers.random_queries ~n:50 ~seed:22 in
  let exec = Qexec.create tree in
  let r1 = Qexec.run ~jobs:1 exec queries in
  let r4 = Qexec.run ~jobs:4 exec queries in
  let r4' = Qexec.run ~jobs:4 exec queries in
  Alcotest.(check bool) "jobs=1 = jobs=4" true (r1 = r4);
  Alcotest.(check bool) "jobs=4 re-run identical" true (r4 = r4');
  (* Aggregate stats cross-check against the sequential loop. *)
  let seq_matched =
    Array.fold_left (fun acc w -> acc + (Rtree.query_count tree w).Rtree.matched) 0 queries
  in
  Alcotest.(check int) "total matched" seq_matched (Qexec.total_stats r1).Rtree.matched

(* After a committed [Index_file.update], the executor's next batch pins
   the new generation: results reflect the new tree, nodes cached under
   the old generation are pruned once its last pin drops, and batches
   still agree with the sequential query on the updated tree. *)
let test_executor_sees_committed_updates () =
  with_temp (fun path ->
      let entries = Helpers.random_entries ~n:300 ~seed:31 in
      (* Pinned to pread: the assertions below are about the shard
         cache, which the mmap backend's direct mapped scans bypass
         (update visibility under mmap is covered in test_mmap). *)
      let idx =
        Index_file.create ~page_size:Helpers.small_page_size ~backend:`Pread path
          ~build:(fun pool -> Prtree.load pool entries)
      in
      Fun.protect
        ~finally:(fun () -> Index_file.close idx)
        (fun () ->
          let exec = Index_file.executor idx in
          let world = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0 in
          let queries = Array.append [| world |] (Helpers.random_queries ~n:15 ~seed:32) in
          (* Two passes: the second is served from the warm cache. *)
          ignore (Qexec.run ~jobs:2 exec queries);
          let r1 = Qexec.run ~jobs:2 exec queries in
          Alcotest.(check int) "all entries found" 300 (snd r1.(0)).Rtree.matched;
          let warm = Qexec.cache_stats exec in
          Alcotest.(check bool) "warm pass hits the cache" true (warm.Shard_cache.st_hits > 0);
          (* Commit an insert; the superblock commit counter advances. *)
          let extra = Entry.make (Rect.make ~xmin:0.4 ~ymin:0.4 ~xmax:0.5 ~ymax:0.5) 999_999 in
          Index_file.update idx (fun tree -> Dynamic.insert tree extra);
          let r2 = Qexec.run ~jobs:2 exec queries in
          Alcotest.(check int) "insert visible" 301 (snd r2.(0)).Rtree.matched;
          let s = Qexec.cache_stats exec in
          Alcotest.(check bool) "old-generation nodes pruned" true
            (s.Shard_cache.st_invalidations > 0);
          Alcotest.(check bool) "batch matches sequential on updated tree" true
            (batch_equal (Index_file.tree idx) exec ~jobs:4 queries)))

(* --- buffer pool miss accounting --- *)

(* A logical read that exhausts its attempt budget serves nothing and
   must count no miss; the caller's successful retry counts exactly
   one.  (The old accounting charged the miss up front, so one logical
   read could be billed twice.) *)
let test_pool_miss_counted_once_per_logical_read () =
  let config =
    { Failpoint.default with seed = 5; read_error = 0.999; max_consecutive = 3 }
  in
  let pager = Pager.wrap_faulty (Pager.create_memory ~page_size:Helpers.small_page_size ()) (Failpoint.create config) in
  (* Two attempts < max_consecutive 3: the first logical read fails. *)
  let pool = Buffer_pool.create ~capacity:16 ~retry:{ Buffer_pool.attempts = 2; backoff_base = 1 } pager in
  let id = Buffer_pool.alloc pool in
  Buffer_pool.write pool id (Bytes.create (Pager.page_size pager));
  Buffer_pool.flush pool;
  Buffer_pool.drop_clean pool;
  Buffer_pool.reset_counters pool;
  (match Buffer_pool.read pool id with
  | _ -> Alcotest.fail "expected the first logical read to fail"
  | exception Pager.Io_error _ -> ());
  Alcotest.(check int) "failed read counts no miss" 0 (Buffer_pool.misses pool);
  (* The failpoint's consecutive-fault cap now forces progress. *)
  ignore (Buffer_pool.read pool id);
  Alcotest.(check int) "retried read counts one miss" 1 (Buffer_pool.misses pool);
  ignore (Buffer_pool.read pool id);
  Alcotest.(check int) "cached re-read is a hit" 1 (Buffer_pool.misses pool);
  Alcotest.(check int) "hit recorded" 1 (Buffer_pool.hits pool);
  Alcotest.(check (float 1e-9)) "hit ratio" 0.5 (Buffer_pool.hit_ratio pool)

let test_pool_hit_ratio_nan_when_idle () =
  let pool = Helpers.small_pool () in
  Alcotest.(check bool) "nan before any read" true (Float.is_nan (Buffer_pool.hit_ratio pool))

let suite =
  [
    Alcotest.test_case "shard cache: basics" `Quick test_cache_basics;
    Alcotest.test_case "shard cache: generations coexist, prune reclaims" `Quick
      test_cache_generation_coexistence_and_prune;
    Alcotest.test_case "shard cache: eviction" `Quick test_cache_eviction;
    Alcotest.test_case "shard cache: concurrent decode-once" `Quick
      test_cache_concurrent_decode_once;
    Alcotest.test_case "zero-copy cursors match decode" `Quick test_iter_rects_matches_decode;
    Helpers.qcheck_case qcheck_executor_matches_sequential;
    Alcotest.test_case "executor deterministic across jobs" `Quick
      test_executor_deterministic_across_jobs;
    Alcotest.test_case "executor sees committed updates" `Quick
      test_executor_sees_committed_updates;
    Alcotest.test_case "pool: one miss per logical read" `Quick
      test_pool_miss_counted_once_per_logical_read;
    Alcotest.test_case "pool: hit ratio nan when idle" `Quick test_pool_hit_ratio_nan_when_idle;
  ]
