(* R-tree framework tests: entry/node codecs, and for every bulk loader
   (packed Hilbert, 4-D Hilbert, STR, TGS): structural validity, exact
   agreement with a brute-force oracle on random window queries, and the
   near-100% utilization the paper reports for packed loaders. *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Entry = Prt_rtree.Entry
module Node = Prt_rtree.Node
module Rtree = Prt_rtree.Rtree
module Pack = Prt_rtree.Pack
module Bulk_hilbert = Prt_rtree.Bulk_hilbert
module Bulk_str = Prt_rtree.Bulk_str
module Bulk_tgs = Prt_rtree.Bulk_tgs

(* --- codecs --- *)

let test_entry_codec_roundtrip () =
  let buf = Bytes.create 100 in
  let e = Entry.make (Rect.make ~xmin:(-1.5) ~ymin:0.25 ~xmax:3.75 ~ymax:1e9) 123456 in
  Entry.write buf 7 e;
  Alcotest.(check bool) "roundtrip" true (Entry.equal e (Entry.read buf 7))

let test_entry_size () =
  Alcotest.(check int) "36 bytes, the paper's record" 36 Entry.size;
  (* 4 KB pages must give the paper's fanout of 113. *)
  Alcotest.(check int) "fanout 113" 113 (Node.capacity ~page_size:4096)

let test_entry_compare_dim () =
  let a = Entry.make (Rect.make ~xmin:0.0 ~ymin:5.0 ~xmax:1.0 ~ymax:6.0) 1 in
  let b = Entry.make (Rect.make ~xmin:2.0 ~ymin:3.0 ~xmax:4.0 ~ymax:9.0) 2 in
  Alcotest.(check bool) "xmin order" true (Entry.compare_dim 0 a b < 0);
  Alcotest.(check bool) "ymin order" true (Entry.compare_dim 1 a b > 0);
  Alcotest.(check bool) "xmax order" true (Entry.compare_dim 2 a b < 0);
  Alcotest.(check bool) "ymax order" true (Entry.compare_dim 3 a b < 0);
  (* Identical rectangles order by id. *)
  let c = Entry.make (Entry.rect a) 9 in
  Alcotest.(check bool) "id tiebreak" true (Entry.compare_dim 0 a c < 0)

let test_node_codec_roundtrip () =
  let cap = Node.capacity ~page_size:Helpers.small_page_size in
  let entries = Helpers.random_entries ~n:cap ~seed:5 in
  let node = Node.make Node.Leaf entries in
  let decoded = Node.decode (Node.encode ~page_size:Helpers.small_page_size node) in
  Alcotest.(check int) "count" cap (Node.length decoded);
  Alcotest.(check bool) "kind" true (Node.kind decoded = Node.Leaf);
  Array.iteri
    (fun i e -> Alcotest.(check bool) "entry" true (Entry.equal e (Node.entries decoded).(i)))
    entries

let test_node_overflow () =
  let entries = Helpers.random_entries ~n:15 ~seed:5 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Node.encode ~page_size:Helpers.small_page_size (Node.make Node.Leaf entries));
       false
     with Invalid_argument _ -> true)

let test_node_bad_kind () =
  let buf = Bytes.make Helpers.small_page_size '\255' in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Node.decode buf);
       false
     with Invalid_argument _ -> true)

(* --- loaders --- *)

let loaders =
  [
    ("hilbert2d", fun pool entries -> Bulk_hilbert.load_h pool entries);
    ("hilbert4d", fun pool entries -> Bulk_hilbert.load_h4 pool entries);
    ("str", Bulk_str.load);
    ("tgs", Bulk_tgs.load);
  ]

let test_loader_queries (name, load) () =
  List.iter
    (fun n ->
      let entries = Helpers.random_entries ~n ~seed:(n + 17) in
      let pool = Helpers.small_pool () in
      let tree = load pool entries in
      Alcotest.(check int) (name ^ " count") n (Rtree.count tree);
      let structure = Helpers.check_structure tree in
      Alcotest.(check int) (name ^ " entries") n structure.Rtree.entries;
      Helpers.check_tree_queries ~seed:(n * 31) tree entries)
    [ 0; 1; 5; 14; 15; 50; 200; 600 ]

let test_loader_all_leaves_same_level (name, load) () =
  let entries = Helpers.random_entries ~n:400 ~seed:3 in
  let pool = Helpers.small_pool () in
  let tree = load pool entries in
  let depths = ref [] in
  Rtree.iter_nodes tree ~f:(fun ~depth ~id:_ node ->
      if Node.kind node = Node.Leaf then depths := depth :: !depths);
  let unique = List.sort_uniq Int.compare !depths in
  Alcotest.(check int) (name ^ " single leaf depth") 1 (List.length unique);
  Alcotest.(check int) (name ^ " leaf depth = height") (Rtree.height tree) (List.hd unique)

let test_loader_duplicate_rects (name, load) () =
  (* Many identical rectangles: loaders must still produce a valid tree
     and exact query answers. *)
  let r = Rect.make ~xmin:0.4 ~ymin:0.4 ~xmax:0.6 ~ymax:0.6 in
  let entries = Array.init 100 (fun i -> Entry.make r i) in
  let pool = Helpers.small_pool () in
  let tree = load pool entries in
  ignore (Helpers.check_structure tree);
  Helpers.check_query_matches_brute_force tree entries r;
  Helpers.check_query_matches_brute_force tree entries (Rect.point 0.5 0.5);
  Alcotest.(check bool) (name ^ " miss") true
    (let result, _ = Rtree.query_list tree (Rect.point 0.9 0.9) in
     result = [])

let test_packed_utilization () =
  (* The paper reports > 99% space utilization for all bulk loaders; for
     our packed loaders only the last node per level may be underfull. *)
  let entries = Helpers.random_entries ~n:2000 ~seed:21 in
  List.iter
    (fun (name, load) ->
      let pool = Helpers.small_pool () in
      let tree = load pool entries in
      let s = Helpers.check_structure tree in
      Alcotest.(check bool)
        (Printf.sprintf "%s utilization %.3f > 0.9" name s.Rtree.utilization)
        true (s.Rtree.utilization > 0.9))
    [ ("hilbert2d", fun pool entries -> Bulk_hilbert.load_h pool entries); ("hilbert4d", fun pool entries -> Bulk_hilbert.load_h4 pool entries); ("str", Bulk_str.load) ]

let test_empty_tree_queries () =
  let pool = Helpers.small_pool () in
  let tree = Rtree.create_empty pool in
  let result, stats = Rtree.query_list tree (Rect.point 0.5 0.5) in
  Alcotest.(check (list int)) "no results" [] (Helpers.ids_of result);
  Alcotest.(check int) "visits the root leaf" 1 stats.Rtree.leaf_visited;
  ignore (Helpers.check_structure tree)

let test_query_stats_leaf_counts () =
  let entries = Helpers.random_entries ~n:500 ~seed:11 in
  let pool = Helpers.small_pool () in
  let tree = Bulk_hilbert.load_h pool entries in
  let s = Helpers.check_structure tree in
  (* A query covering everything must visit every node. *)
  let world = Rect.union_map ~f:Entry.rect entries in
  let stats = Rtree.query_count tree world in
  Alcotest.(check int) "all leaves visited" s.Rtree.leaves stats.Rtree.leaf_visited;
  Alcotest.(check int) "all nodes visited" s.Rtree.nodes (Rtree.nodes_visited stats);
  Alcotest.(check int) "all entries matched" 500 stats.Rtree.matched

let prop_loader_query_correct =
  QCheck.Test.make ~name:"all loaders answer random queries exactly" ~count:25
    (QCheck.pair (Helpers.arbitrary_entries 300) QCheck.(int_range 0 1_000_000))
    (fun (entries, qseed) ->
      let query = Helpers.random_rect (Prt_util.Rng.create qseed) in
      let expected = Helpers.brute_force entries query in
      List.for_all
        (fun (_, load) ->
          let pool = Helpers.small_pool () in
          let tree = load pool entries in
          let result, _ = Rtree.query_list tree query in
          Helpers.ids_of result = expected)
        loaders)

let test_tgs_beats_random_order () =
  (* Sanity check that TGS produces a genuinely clustered tree: on
     uniform data its average query must touch far fewer leaves than a
     tree packed in input (random) order. *)
  let entries = Helpers.random_entries ~n:1500 ~seed:8 in
  let random_tree = Pack.build_from_ordered (Helpers.small_pool ()) entries in
  let tgs_tree = Bulk_tgs.load (Helpers.small_pool ()) entries in
  let queries = Helpers.random_queries ~n:30 ~seed:9 in
  let leaves tree =
    Array.fold_left (fun acc q -> acc + (Rtree.query_count tree q).Rtree.leaf_visited) 0 queries
  in
  let r = leaves random_tree and t = leaves tgs_tree in
  Alcotest.(check bool) (Printf.sprintf "tgs %d < random %d / 2" t r) true (t < r / 2)

let test_meta_roundtrip () =
  let pool = Helpers.small_pool () in
  let meta_page = Prt_storage.Buffer_pool.alloc pool in
  let entries = Helpers.random_entries ~n:100 ~seed:4 in
  let tree = Bulk_hilbert.load_h pool entries in
  Rtree.save_meta tree ~meta_page;
  let reopened = Rtree.load_meta pool ~meta_page in
  Alcotest.(check int) "root" (Rtree.root tree) (Rtree.root reopened);
  Alcotest.(check int) "height" (Rtree.height tree) (Rtree.height reopened);
  Alcotest.(check int) "count" (Rtree.count tree) (Rtree.count reopened);
  Helpers.check_tree_queries ~seed:44 reopened entries

let test_validate_catches_corruption () =
  let pool = Helpers.small_pool () in
  let entries = Helpers.random_entries ~n:200 ~seed:2 in
  let tree = Bulk_hilbert.load_h pool entries in
  (* Corrupt the MBR of the root's first child. *)
  let root_node = Rtree.read_node tree (Rtree.root tree) in
  let root_entries = Node.entries root_node in
  root_entries.(0) <- Entry.make (Rect.point 0.0 0.0) (Entry.id root_entries.(0));
  Rtree.write_node tree (Rtree.root tree) (Node.make (Node.kind root_node) root_entries);
  Alcotest.(check bool) "validation fails" true
    (try
       ignore (Rtree.validate tree);
       false
     with Rtree.Invalid _ -> true)

let suite =
  let loader_cases =
    List.concat_map
      (fun loader ->
        let name, _ = loader in
        [
          Alcotest.test_case (name ^ ": query vs oracle across sizes") `Quick
            (test_loader_queries loader);
          Alcotest.test_case (name ^ ": leaves on one level") `Quick
            (test_loader_all_leaves_same_level loader);
          Alcotest.test_case (name ^ ": duplicate rectangles") `Quick
            (test_loader_duplicate_rects loader);
        ])
      loaders
  in
  [
    Alcotest.test_case "entry: codec roundtrip" `Quick test_entry_codec_roundtrip;
    Alcotest.test_case "entry: paper record size" `Quick test_entry_size;
    Alcotest.test_case "entry: kd comparators" `Quick test_entry_compare_dim;
    Alcotest.test_case "node: codec roundtrip" `Quick test_node_codec_roundtrip;
    Alcotest.test_case "node: overflow" `Quick test_node_overflow;
    Alcotest.test_case "node: bad kind" `Quick test_node_bad_kind;
    Alcotest.test_case "tree: empty queries" `Quick test_empty_tree_queries;
    Alcotest.test_case "tree: stats count every node" `Quick test_query_stats_leaf_counts;
    Alcotest.test_case "tree: packed utilization" `Quick test_packed_utilization;
    Alcotest.test_case "tree: meta roundtrip" `Quick test_meta_roundtrip;
    Alcotest.test_case "tree: validate catches corruption" `Quick test_validate_catches_corruption;
    Alcotest.test_case "tgs: beats random packing" `Quick test_tgs_beats_random_order;
    Helpers.qcheck_case prop_loader_query_correct;
  ]
  @ loader_cases
