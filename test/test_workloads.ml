(* Workload generator tests: determinism, geometric constraints of each
   dataset family, and the query generators. *)

module Rect = Prt_geom.Rect
module Entry = Prt_rtree.Entry
module Datasets = Prt_workloads.Datasets
module Tiger = Prt_workloads.Tiger
module Queries = Prt_workloads.Queries

let unit_square = Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0

let check_inside name entries =
  Array.iter
    (fun e ->
      Alcotest.(check bool) (name ^ " inside unit square") true
        (Rect.contains unit_square (Entry.rect e)))
    entries

let check_ids entries =
  Array.iteri (fun i e -> Alcotest.(check int) "id = position" i (Entry.id e)) entries

let test_determinism () =
  let a = Datasets.size ~n:200 ~max_side:0.01 ~seed:5 in
  let b = Datasets.size ~n:200 ~max_side:0.01 ~seed:5 in
  Array.iteri (fun i e -> Alcotest.(check bool) "same" true (Entry.equal e b.(i))) a;
  let c = Datasets.size ~n:200 ~max_side:0.01 ~seed:6 in
  Alcotest.(check bool) "different seed differs" true
    (Array.exists2 (fun x y -> not (Entry.equal x y)) a c)

let test_size_dataset () =
  List.iter
    (fun max_side ->
      let entries = Datasets.size ~n:300 ~max_side ~seed:1 in
      Alcotest.(check int) "n" 300 (Array.length entries);
      check_inside "size" entries;
      check_ids entries;
      Array.iter
        (fun e ->
          let r = Entry.rect e in
          Alcotest.(check bool) "side bounds" true
            (Rect.width r <= max_side && Rect.height r <= max_side))
        entries)
    [ 0.001; 0.05; 0.2 ]

let test_aspect_dataset () =
  List.iter
    (fun a ->
      let entries = Datasets.aspect ~n:300 ~a ~seed:2 in
      check_inside "aspect" entries;
      Array.iter
        (fun e ->
          let r = Entry.rect e in
          let area = Rect.area r in
          Alcotest.(check (float 1e-9)) "fixed area" 1e-6 area;
          let ratio = Float.max (Rect.width r /. Rect.height r) (Rect.height r /. Rect.width r) in
          Alcotest.(check (float 1e-6)) "aspect ratio" a ratio)
        entries)
    [ 1.0; 10.0; 1000.0 ]

let test_skewed_dataset () =
  let entries = Datasets.skewed ~n:500 ~c:5 ~seed:3 in
  check_inside "skewed" entries;
  (* Squeezing: most mass near y = 0. *)
  let below = Array.fold_left
      (fun acc e -> if Rect.ymin (Entry.rect e) < 0.1 then acc + 1 else acc) 0 entries
  in
  Alcotest.(check bool) (Printf.sprintf "squeezed down (%d/500 below 0.1)" below) true (below > 250);
  (* All are points. *)
  Array.iter (fun e -> Alcotest.(check (float 0.0)) "point" 0.0 (Rect.area (Entry.rect e))) entries

let test_cluster_dataset () =
  let entries = Datasets.cluster ~n_clusters:10 ~per_cluster:50 ~seed:4 in
  Alcotest.(check int) "n" 500 (Array.length entries);
  check_inside "cluster" entries;
  (* Every point lies within its cluster's tiny square on the mid line. *)
  Array.iteri
    (fun idx e ->
      let c = idx / 50 in
      let cx = (float_of_int c +. 0.5) /. 10.0 in
      let x = Rect.xmin (Entry.rect e) and y = Rect.ymin (Entry.rect e) in
      Alcotest.(check bool) "x near center" true (Float.abs (x -. cx) <= Datasets.cluster_side);
      Alcotest.(check bool) "y near band" true
        (Float.abs (y -. Datasets.cluster_band_center) <= Datasets.cluster_side))
    entries

let test_bit_reverse () =
  Alcotest.(check int) "rev 0" 0 (Datasets.bit_reverse ~bits:4 0);
  Alcotest.(check int) "rev 1" 8 (Datasets.bit_reverse ~bits:4 1);
  Alcotest.(check int) "rev 0b0110" 6 (Datasets.bit_reverse ~bits:4 6);
  Alcotest.(check int) "rev 0b0011" 12 (Datasets.bit_reverse ~bits:4 3);
  (* Involution. *)
  for i = 0 to 15 do
    Alcotest.(check int) "involution" i (Datasets.bit_reverse ~bits:4 (Datasets.bit_reverse ~bits:4 i))
  done

let test_worst_case_grid () =
  let wc = Datasets.worst_case ~columns_log2:4 ~b:8 in
  Alcotest.(check int) "n" (16 * 8) (Array.length wc.Datasets.entries);
  (* Column x-coordinates are i + 1/2. *)
  Array.iteri
    (fun idx e ->
      let i = idx / 8 in
      Alcotest.(check (float 0.0)) "x" (float_of_int i +. 0.5) (Rect.xmin (Entry.rect e)))
    wc.Datasets.entries;
  (* All y values distinct (the shifts are all different). *)
  let ys = Array.map (fun e -> Rect.ymin (Entry.rect e)) wc.Datasets.entries in
  let sorted = Array.copy ys in
  Array.sort Float.compare sorted;
  for i = 0 to Array.length sorted - 2 do
    Alcotest.(check bool) "distinct y" true (sorted.(i) < sorted.(i + 1))
  done

let test_worst_case_query_misses_everything () =
  let wc = Datasets.worst_case ~columns_log2:5 ~b:10 in
  for row = 0 to 9 do
    let q = Datasets.worst_case_query wc ~row in
    Alcotest.(check (list int)) "zero output" []
      (Helpers.brute_force wc.Datasets.entries q)
  done

let test_tiger_properties () =
  let entries = Tiger.generate (Tiger.default_params ~n:2000 ~seed:7) in
  Alcotest.(check int) "n" 2000 (Array.length entries);
  check_inside "tiger" entries;
  check_ids entries;
  (* Road segments are short: diagonal far below the world size. *)
  let long_ones =
    Array.fold_left
      (fun acc e ->
        let r = Entry.rect e in
        if Rect.width r > 0.01 || Rect.height r > 0.01 then acc + 1 else acc)
      0 entries
  in
  Alcotest.(check bool) (Printf.sprintf "segments short (%d long)" long_ones) true
    (long_ones < 20);
  (* Deterministic. *)
  let again = Tiger.generate (Tiger.default_params ~n:2000 ~seed:7) in
  Array.iteri (fun i e -> Alcotest.(check bool) "same" true (Entry.equal e again.(i))) entries

let test_tiger_subsets_nested_sizes () =
  let subsets = Tiger.eastern_subsets ~scale:0.02 ~seed:9 in
  Alcotest.(check int) "five subsets" 5 (Array.length subsets);
  for i = 0 to 3 do
    Alcotest.(check bool) "increasing size" true
      (Array.length subsets.(i) < Array.length subsets.(i + 1))
  done

let test_queries_squares () =
  let world = Rect.make ~xmin:2.0 ~ymin:1.0 ~xmax:6.0 ~ymax:3.0 in
  let qs = Queries.squares ~count:50 ~area_fraction:0.01 ~world ~seed:8 in
  Alcotest.(check int) "count" 50 (Array.length qs);
  Array.iter
    (fun q ->
      Alcotest.(check bool) "inside world" true (Rect.contains world q);
      Alcotest.(check (float 1e-9)) "area = 1% of world" (0.01 *. Rect.area world) (Rect.area q))
    qs

let test_queries_skewed () =
  let qs = Queries.skewed_squares ~count:50 ~area_fraction:0.01 ~c:5 ~seed:9 in
  Array.iter
    (fun q ->
      Alcotest.(check bool) "inside unit square" true (Rect.contains unit_square q);
      (* Same x-width as the unskewed square. *)
      Alcotest.(check (float 1e-9)) "x width" 0.1 (Rect.width q))
    qs

let test_queries_cluster_strips () =
  let data = Datasets.cluster ~n_clusters:20 ~per_cluster:20 ~seed:10 in
  let qs = Queries.cluster_strips ~count:20 ~seed:11 in
  Array.iter
    (fun q ->
      Alcotest.(check (float 1e-12)) "strip height" 1e-7 (Rect.height q);
      (* Strip passes through the band of every cluster: x-range spans
         all clusters. *)
      Alcotest.(check bool) "full width" true (Rect.xmin q = 0.0 && Rect.xmax q = 1.0))
    qs;
  (* At least some strips catch some points. *)
  let total =
    Array.fold_left (fun acc q -> acc + List.length (Helpers.brute_force data q)) 0 qs
  in
  Alcotest.(check bool) (Printf.sprintf "strips hit points (%d)" total) true (total > 0)

let test_uniform_points () =
  let entries = Datasets.uniform_points ~n:100 ~seed:12 in
  check_inside "uniform" entries;
  Array.iter (fun e -> Alcotest.(check (float 0.0)) "point" 0.0 (Rect.area (Entry.rect e))) entries

let suite =
  [
    Alcotest.test_case "datasets: determinism" `Quick test_determinism;
    Alcotest.test_case "datasets: size" `Quick test_size_dataset;
    Alcotest.test_case "datasets: aspect" `Quick test_aspect_dataset;
    Alcotest.test_case "datasets: skewed" `Quick test_skewed_dataset;
    Alcotest.test_case "datasets: cluster" `Quick test_cluster_dataset;
    Alcotest.test_case "datasets: bit reverse" `Quick test_bit_reverse;
    Alcotest.test_case "datasets: worst-case grid" `Quick test_worst_case_grid;
    Alcotest.test_case "datasets: worst-case query misses" `Quick
      test_worst_case_query_misses_everything;
    Alcotest.test_case "datasets: uniform points" `Quick test_uniform_points;
    Alcotest.test_case "tiger: properties" `Quick test_tiger_properties;
    Alcotest.test_case "tiger: nested subsets" `Quick test_tiger_subsets_nested_sizes;
    Alcotest.test_case "queries: squares" `Quick test_queries_squares;
    Alcotest.test_case "queries: skewed" `Quick test_queries_skewed;
    Alcotest.test_case "queries: cluster strips" `Quick test_queries_cluster_strips;
  ]
