(* The observability layer: span balance (including under exceptions),
   Chrome trace-event well-formedness, histogram bucketing, span-level
   I/O attribution, and — most load-bearing — the zero-overhead-off
   property: instrumentation must not perturb the repository's I/O
   accounting or query results in any way. *)

module Json = Prt_obs.Json
module Metrics = Prt_obs.Metrics
module Trace = Prt_obs.Trace
module Pager = Prt_storage.Pager
module Buffer_pool = Prt_storage.Buffer_pool
module Rtree = Prt_rtree.Rtree

(* Every test must leave the global trace/metrics state as it found it:
   null sink installed, collection off. *)
let with_clean_trace f =
  Fun.protect ~finally:(fun () -> Trace.uninstall ()) f

let phases_and_names evs =
  List.map
    (fun e ->
      ( (match e.Trace.ev_phase with Trace.B -> "B" | Trace.E -> "E" | Trace.I -> "i"),
        e.Trace.ev_name ))
    evs

(* --- JSON emitter/parser --- *)

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 1.5;
      Json.Str "plain";
      Json.Str "quo\"te back\\slash new\nline tab\t";
      Json.Str "unicode: \xc3\xa9\xe2\x82\xac";
      Json.List [ Json.Int 1; Json.Str "two"; Json.Null ];
      Json.Obj [ ("a", Json.Int 1); ("nested", Json.Obj [ ("b", Json.List [] ) ]) ];
    ]
  in
  List.iter
    (fun j ->
      let s = Json.to_string j in
      Alcotest.(check bool) ("round-trips: " ^ s) true (Json.of_string s = j))
    samples;
  (* Malformed documents must raise, not mis-parse. *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | v -> Alcotest.failf "parsed %S as %s" s (Json.to_string v))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* --- histogram buckets --- *)

let test_histogram_buckets () =
  List.iter
    (fun (v, k) ->
      Alcotest.(check int) (Printf.sprintf "bucket_index %d" v) k (Metrics.bucket_index v))
    [ (min_int, 0); (-1, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4); (1023, 10) ];
  (* bucket_bounds inverts bucket_index on the bucket edges. *)
  for k = 1 to 20 do
    let lo, hi = Metrics.bucket_bounds k in
    Alcotest.(check int) (Printf.sprintf "lo of bucket %d" k) k (Metrics.bucket_index lo);
    Alcotest.(check int) (Printf.sprintf "hi of bucket %d" k) k (Metrics.bucket_index hi)
  done;
  Alcotest.(check int) "bucket 0 upper bound" 0 (snd (Metrics.bucket_bounds 0));
  (* observe routes samples into those buckets (only while collecting). *)
  let h = Metrics.histogram "test.obs.hist" in
  Metrics.observe h 5;
  Alcotest.(check int) "observe off = no-op" 0 (Metrics.histogram_count h);
  Metrics.set_collecting true;
  Fun.protect
    ~finally:(fun () -> Metrics.set_collecting false)
    (fun () ->
      List.iter (Metrics.observe h) [ 0; 1; 5; 6; 7 ];
      Alcotest.(check int) "count" 5 (Metrics.histogram_count h);
      Alcotest.(check int) "sum" 19 (Metrics.histogram_sum h);
      Alcotest.(check int) "bucket 0" 1 (Metrics.histogram_bucket h 0);
      Alcotest.(check int) "bucket 1" 1 (Metrics.histogram_bucket h 1);
      Alcotest.(check int) "bucket 3" 3 (Metrics.histogram_bucket h 3))

(* --- registry semantics --- *)

let test_registry () =
  let a = Metrics.counter "test.obs.dedup" in
  let b = Metrics.counter "test.obs.dedup" in
  Metrics.set_collecting true;
  Fun.protect
    ~finally:(fun () -> Metrics.set_collecting false)
    (fun () ->
      Metrics.tick a;
      Alcotest.(check int) "find-or-create shares state" 1 (Metrics.value b);
      Metrics.add b 4;
      Alcotest.(check int) "add" 5 (Metrics.value a));
  (match Metrics.gauge "test.obs.dedup" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must raise");
  (* The registry JSON export parses back and mentions the counter. *)
  let j = Json.of_string (Json.to_string (Metrics.to_json ())) in
  match Json.member "counters" j with
  | Some (Json.Obj kvs) ->
      Alcotest.(check bool) "counter exported" true (List.mem_assoc "test.obs.dedup" kvs)
  | _ -> Alcotest.fail "no counters object in metrics JSON"

(* --- span balance, including under exceptions --- *)

let test_span_balance () =
  with_clean_trace (fun () ->
      Trace.install (Trace.memory_sink ());
      (try
         Trace.with_span "outer" (fun () ->
             Trace.with_span "inner-ok" (fun () -> ());
             Trace.with_span "inner-raise" (fun () -> raise Exit))
       with Exit -> ());
      Trace.instant "marker";
      let evs = Trace.events () in
      Alcotest.(check (list (pair string string)))
        "events balanced under exceptions"
        [
          ("B", "outer");
          ("B", "inner-ok");
          ("E", "inner-ok");
          ("B", "inner-raise");
          ("E", "inner-raise");
          ("E", "outer");
          ("i", "marker");
        ]
        (phases_and_names evs);
      (* Timestamps are monotone non-decreasing. *)
      let rec mono = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool) "monotone ts" true (a.Trace.ev_ts <= b.Trace.ev_ts);
            mono rest
        | _ -> ()
      in
      mono evs;
      (* The summary pairs them up: each span appears once with one call. *)
      let s = Trace.summary evs in
      Alcotest.(check (list (pair string int)))
        "summary calls"
        [ ("inner-ok", 1); ("inner-raise", 1); ("outer", 1) ]
        (List.sort compare (List.map (fun st -> (st.Trace.span_name, st.Trace.calls)) s)))

(* --- Chrome trace JSON well-formedness --- *)

let test_chrome_json () =
  with_clean_trace (fun () ->
      Trace.install (Trace.memory_sink ());
      Trace.with_span "tricky \"name\" with \\ and \n"
        ~args:[ ("note", Trace.Str "arg with \"quotes\" and \xc3\xa9") ]
        (fun () -> Trace.with_span "child" (fun () -> ()));
      let doc = Trace.chrome_json (Trace.events ()) in
      let parsed = Json.of_string (Json.to_string doc) in
      let events =
        match Json.member "traceEvents" parsed with
        | Some (Json.List l) -> l
        | _ -> Alcotest.fail "no traceEvents"
      in
      Alcotest.(check int) "event count" 4 (List.length events);
      (* Replay the B/E stack from the parsed document. *)
      let stack = ref [] in
      List.iter
        (fun e ->
          let name =
            match Json.member "name" e with Some (Json.Str s) -> s | _ -> Alcotest.fail "no name"
          in
          match Json.member "ph" e with
          | Some (Json.Str "B") -> stack := name :: !stack
          | Some (Json.Str "E") -> (
              match !stack with
              | top :: rest ->
                  Alcotest.(check string) "E matches B" top name;
                  stack := rest
              | [] -> Alcotest.fail "E without B")
          | _ -> Alcotest.fail "bad ph")
        events;
      Alcotest.(check int) "stack drained" 0 (List.length !stack))

(* --- span-attributed I/O sums to the pager totals --- *)

let arg_int name args =
  match List.assoc_opt name args with Some (Trace.Int n) -> n | _ -> 0

let test_span_io_attribution () =
  with_clean_trace (fun () ->
      Trace.install (Trace.memory_sink ());
      let sp = Trace.span_begin "root" in
      let pool = Helpers.small_pool () in
      let pager = Buffer_pool.pager pool in
      let entries = Helpers.random_entries ~n:400 ~seed:7 in
      let tree = Prt_prtree.Prtree.load pool entries in
      Buffer_pool.flush pool;
      ignore (Rtree.query_count tree (Prt_geom.Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:1.0 ~ymax:1.0));
      let stats = Pager.snapshot pager in
      Trace.span_end sp;
      let root_end =
        List.find
          (fun e -> e.Trace.ev_phase = Trace.E && e.Trace.ev_name = "root")
          (Trace.events ())
      in
      (* The root span wraps the pool's whole life, so its counter deltas
         must equal the pager's own statistics exactly. *)
      Alcotest.(check int) "span reads = pager reads" stats.Pager.s_reads
        (arg_int "pager.reads" root_end.Trace.ev_args);
      Alcotest.(check int) "span writes = pager writes" stats.Pager.s_writes
        (arg_int "pager.writes" root_end.Trace.ev_args);
      Alcotest.(check int) "span allocs = pager allocs" stats.Pager.s_allocs
        (arg_int "pager.allocs" root_end.Trace.ev_args))

(* --- the zero-overhead-off property --- *)

(* One deterministic workload: external PR-tree build + a query batch.
   Returns every observable the paper's accounting cares about. *)
let run_workload () =
  let pool = Helpers.small_pool () in
  let pager = Buffer_pool.pager pool in
  let entries = Helpers.random_entries ~n:600 ~seed:11 in
  let file = Prt_rtree.Entry.File.of_array pager entries in
  let tree = Prt_prtree.Ext_build.load ~mem_records:(16 * 14) pool file in
  Buffer_pool.flush pool;
  let queries = Helpers.random_queries ~n:20 ~seed:12 in
  let results =
    Array.to_list queries
    |> List.concat_map (fun q -> Helpers.ids_of (fst (Rtree.query_list tree q)))
  in
  let s = Pager.snapshot pager in
  ((s.Pager.s_reads, s.Pager.s_writes, s.Pager.s_allocs), Buffer_pool.hits pool,
   Buffer_pool.misses pool, results)

let test_zero_overhead_off () =
  with_clean_trace (fun () ->
      (* Baseline: no sink was ever installed in this run of the workload. *)
      Trace.uninstall ();
      let base = run_workload () in
      (* Explicit null sink. *)
      Trace.install Trace.null_sink;
      let with_null = run_workload () in
      (* Full tracing into a memory sink. *)
      Trace.install (Trace.memory_sink ());
      let with_mem = run_workload () in
      Trace.uninstall ();
      let io (x, _, _, _) = x and res (_, _, _, r) = r in
      let hits (_, h, _, _) = h and misses (_, _, m, _) = m in
      Alcotest.(check (triple int int int)) "null sink: pager identical" (io base) (io with_null);
      Alcotest.(check (triple int int int)) "memory sink: pager identical" (io base) (io with_mem);
      Alcotest.(check int) "null sink: hits identical" (hits base) (hits with_null);
      Alcotest.(check int) "memory sink: hits identical" (hits base) (hits with_mem);
      Alcotest.(check int) "null sink: misses identical" (misses base) (misses with_null);
      Alcotest.(check int) "memory sink: misses identical" (misses base) (misses with_mem);
      Alcotest.(check (list int)) "null sink: results identical" (res base) (res with_null);
      Alcotest.(check (list int)) "memory sink: results identical" (res base) (res with_mem))

(* --- query_profile agrees with query --- *)

let test_query_profile () =
  let pool = Helpers.small_pool () in
  let entries = Helpers.random_entries ~n:300 ~seed:21 in
  let tree = Prt_prtree.Prtree.load pool entries in
  let q = Prt_geom.Rect.make ~xmin:0.2 ~ymin:0.2 ~xmax:0.6 ~ymax:0.6 in
  let plain = Rtree.query_count tree q in
  let acc = ref [] in
  let p = Rtree.query_profile tree q ~f:(fun e -> acc := Prt_rtree.Entry.id e :: !acc) in
  Alcotest.(check int) "matched agrees" plain.Rtree.matched p.Rtree.pf_matched;
  Alcotest.(check int) "leaves agree" plain.Rtree.leaf_visited p.Rtree.pf_leaves;
  Alcotest.(check int) "internal agree" plain.Rtree.internal_visited p.Rtree.pf_internal;
  Alcotest.(check int) "levels array spans the height" (Rtree.height tree)
    (Array.length p.Rtree.pf_levels);
  Alcotest.(check int) "per-level sum = nodes visited"
    (plain.Rtree.leaf_visited + plain.Rtree.internal_visited)
    (Array.fold_left ( + ) 0 p.Rtree.pf_levels);
  Alcotest.(check int) "root level holds one node" 1 p.Rtree.pf_levels.(0);
  Alcotest.(check int) "callback saw every match" plain.Rtree.matched (List.length !acc)

let suite =
  [
    Alcotest.test_case "json round-trip and strictness" `Quick test_json_roundtrip;
    Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_buckets;
    Alcotest.test_case "registry find-or-create and export" `Quick test_registry;
    Alcotest.test_case "span balance under exceptions" `Quick test_span_balance;
    Alcotest.test_case "chrome trace JSON well-formed" `Quick test_chrome_json;
    Alcotest.test_case "span I/O deltas match pager totals" `Quick test_span_io_attribution;
    Alcotest.test_case "zero overhead when off" `Quick test_zero_overhead_off;
    Alcotest.test_case "query_profile agrees with query" `Quick test_query_profile;
  ]
