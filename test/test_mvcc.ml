(* MVCC snapshot isolation: writers never block readers, and every
   reader observes exactly one committed generation.

   The headline property is linearizability-style: reader domains pin
   generation snapshots and query while the main domain commits a
   stream of updates (and runs multicore executor batches between
   commits).  Every query result must equal the oracle of the
   generation it pinned — exactly the pre-commit or the post-commit
   answer, never a mix.  A deterministic harness drives the same
   assertion from [Failpoint]'s physical-write hook at every page-write
   boundary inside a commit, and the crash matrix gains a
   concurrent-reader column: crash the writer at each kill point while
   a pinned reader is mid-descent, reopen, and the file must still be
   exactly pre-op or post-op with a clean fsck.  All randomized cases
   print a one-line `PRT_QCHECK_SEED=...` repro. *)

module Rect = Prt_geom.Rect
module Pager = Prt_storage.Pager
module Failpoint = Prt_storage.Failpoint
module Superblock = Prt_storage.Superblock
module Entry = Prt_rtree.Entry
module Rtree = Prt_rtree.Rtree
module Dynamic = Prt_rtree.Dynamic
module Index_file = Prt_rtree.Index_file
module Qexec = Prt_rtree.Qexec
module Prtree = Prt_prtree.Prtree

let page_size = Helpers.small_page_size

let with_temp f =
  let path = Filename.temp_file "prt_mvcc" ".idx" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let with_temp2 f = with_temp (fun a -> with_temp (fun b -> f a b))

let copy_file src dst =
  let ic = open_in_bin src in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc data;
  close_out oc

let everything = Rect.make ~xmin:(-1e9) ~ymin:(-1e9) ~xmax:1e9 ~ymax:1e9

let create_index ?backend path entries =
  Index_file.create ~page_size ?backend path ~build:(fun pool -> Prtree.load pool entries)

let backend_name = function `Mmap -> "mmap" | `Pread -> "pread" | `Auto -> "auto"

(* Update entries carry ids >= 1_000_000 so oracles never collide with
   the bulk-loaded ids. *)
let extra_entry j =
  let x = 0.05 +. (0.9 *. float_of_int (j mod 10) /. 10.0) in
  Entry.make (Rect.make ~xmin:x ~ymin:x ~xmax:(x +. 0.01) ~ymax:(x +. 0.01)) (1_000_000 + j)

let snapshot_ids idx sv =
  Helpers.ids_of (fst (Rtree.query_list ~snapshot:sv (Index_file.tree idx) everything))

let live_ids idx = Helpers.ids_of (fst (Rtree.query_list (Index_file.tree idx) everything))

(* --- basic snapshot semantics --- *)

(* A pin held across several commits keeps answering the pinned tree:
   the version store must serve images superseded more than once. *)
let test_snapshot_pins_old_generation () =
  with_temp @@ fun path ->
  let entries = Helpers.random_entries ~n:90 ~seed:11 in
  let idx = create_index path entries in
  Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
  let pre = Helpers.brute_force entries everything in
  let s = Index_file.snapshot idx in
  for j = 0 to 3 do
    Index_file.update idx (fun tree -> Dynamic.insert tree (extra_entry j))
  done;
  Alcotest.(check (list int))
    "pinned snapshot still answers the pre-update tree after 4 commits" pre
    (snapshot_ids idx (Index_file.snapshot_view s));
  let post = List.sort Int.compare (List.init 4 (fun j -> 1_000_000 + j) @ pre) in
  Index_file.with_snapshot idx (fun sv ->
      Alcotest.(check (list int)) "a fresh snapshot sees every commit" post (snapshot_ids idx sv));
  Alcotest.(check (list int)) "the live tree agrees with the fresh snapshot" post (live_ids idx);
  Index_file.release_snapshot s

(* --- satellite: close is idempotent and releases held pins --- *)

let test_close_idempotent_and_releases_pins () =
  with_temp @@ fun path ->
  let idx = create_index path (Helpers.random_entries ~n:60 ~seed:7) in
  let sb = Index_file.superblock idx in
  let s1 = Index_file.snapshot idx in
  let s2 = Index_file.snapshot idx in
  Alcotest.(check int) "two pins held" 2 (Superblock.pin_count sb);
  Index_file.release_snapshot s1;
  Index_file.release_snapshot s1;
  Alcotest.(check int) "double release drops exactly one pin" 1 (Superblock.pin_count sb);
  Index_file.close idx;
  Alcotest.(check int) "close released the forgotten pin" 0 (Superblock.pin_count sb);
  (* Second close is a no-op; releasing after close is harmless. *)
  Index_file.close idx;
  Index_file.release_snapshot s2;
  Alcotest.(check int) "close and release stay idempotent" 0 (Superblock.pin_count sb)

(* --- the linearizability property --- *)

let lin_updates = 6

(* Reader domains loop snapshot queries while the main domain commits
   [lin_updates] inserts and runs a multicore executor batch after each
   commit.  Every observation — raw snapshot descent or executor batch —
   must equal the oracle of exactly one committed generation.  After the
   readers drain, one more commit must reclaim every retained version
   and parked free page.  Runs once per read backend: under mmap the
   snapshot descent races the writer's in-place page overwrites on the
   live mapping, so a torn or stale mapped page that escaped the
   generation probe / CRC re-verification would surface here as a
   mixed-generation read. *)
let qcheck_linearizable backend =
  let count = if Helpers.long_run then 500 else 30 in
  QCheck.Test.make ~count
    ~name:
      (Printf.sprintf "mvcc[%s]: concurrent reads are pre- or post-commit, never a mix"
         (backend_name backend))
    (QCheck.pair
       (Helpers.arbitrary_scenario ~min_size:20 ~max_size:120 ())
       (QCheck.oneofl ~print:string_of_int [ 1; 2; 4 ]))
    (fun (sc, jobs) ->
      with_temp @@ fun path ->
      let entries = Helpers.random_entries ~n:sc.Helpers.sc_size ~seed:sc.Helpers.sc_seed in
      let idx = create_index ~backend path entries in
      Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
      let sb = Index_file.superblock idx in
      let gen0 = Superblock.generation sb in
      (* Oracle: after j commits the generation is gen0 + 2j and the
         tree holds the bulk entries plus the first j extras.  Computed
         up front so reader domains share it read-only. *)
      let base = Helpers.brute_force entries everything in
      let oracles =
        Array.init (lin_updates + 1) (fun j ->
            let extras = List.init j (fun i -> 1_000_000 + i) in
            (gen0 + (2 * j), List.sort Int.compare (extras @ base)))
      in
      let exec = Index_file.executor idx in
      let stop = Atomic.make false in
      let failure = Atomic.make None in
      let fail msg = Atomic.compare_and_set failure None (Some msg) |> ignore in
      let check_observation ~what gen got =
        match Array.find_opt (fun (g, _) -> g = gen) oracles with
        | None -> fail (Printf.sprintf "%s pinned unknown generation %d" what gen)
        | Some (_, expect) ->
            if got <> expect then
              fail
                (Printf.sprintf "%s at generation %d read %d ids where the oracle has %d: torn"
                   what gen (List.length got) (List.length expect))
      in
      let reader () =
        while not (Atomic.get stop) do
          Index_file.with_snapshot idx (fun sv ->
              check_observation ~what:"reader" sv.Rtree.sv_gen (snapshot_ids idx sv))
        done
      in
      let readers = List.init jobs (fun _ -> Domain.spawn reader) in
      for j = 1 to lin_updates do
        Index_file.update idx (fun tree -> Dynamic.insert tree (extra_entry (j - 1)));
        let gen = Superblock.generation sb in
        if gen <> gen0 + (2 * j) then
          fail (Printf.sprintf "commit %d advanced the generation to %d, expected %d" j gen
                  (gen0 + (2 * j)));
        (* An executor batch between commits pins the generation it
           opened at; run is sequential on this domain, so it must see
           exactly the j-commit oracle. *)
        let results = Qexec.run ~jobs exec [| everything |] in
        check_observation ~what:"executor batch" gen (Helpers.ids_of (fst results.(0)))
      done;
      Atomic.set stop true;
      List.iter Domain.join readers;
      (match Atomic.get failure with
      | Some msg -> QCheck.Test.fail_report msg
      | None -> ());
      (* With every pin dropped, the next commit reclaims all deferred
         state: no retained versions, no parked frees. *)
      Index_file.update idx (fun tree -> Dynamic.insert tree (extra_entry lin_updates));
      let st = Pager.mvcc_stats (Index_file.pager idx) in
      if st.Pager.live_versions <> 0 || st.Pager.parked_pages <> 0 then
        QCheck.Test.fail_report
          (Printf.sprintf "deferred state leaked: %d versions, %d parked pages"
             st.Pager.live_versions st.Pager.parked_pages);
      true)

(* --- deterministic interleaving: a reader at every write boundary --- *)

(* [Failpoint]'s physical-write hook runs a full pinned snapshot query
   at every page-write boundary inside one commit.  The generation only
   publishes after the last write, so every probe must see exactly the
   pre-commit tree — this sweeps all writer/reader interleavings of one
   commit deterministically, with no domains and no timing.

   With [~backend:`Mmap] the probes descend the live file mapping while
   the writer overwrites pages under it — each boundary is exactly the
   moment a mapped page may be torn, so a pre-image that failed to
   retain, a stale CRC memo, or a missed post-scan re-probe shows up as
   a torn snapshot here. *)
let test_hook_probes_every_write_boundary backend () =
  with_temp @@ fun path ->
  let entries = Helpers.random_entries ~n:120 ~seed:4242 in
  let pre = Helpers.brute_force entries everything in
  let idx0 = create_index path entries in
  Index_file.close idx0;
  let probes = ref 0 in
  let handle = ref None in
  let hook _ordinal =
    match !handle with
    | None -> ()
    | Some idx ->
        Index_file.with_snapshot idx (fun sv ->
            incr probes;
            let got = snapshot_ids idx sv in
            if got <> pre then
              Alcotest.failf "probe %d mid-commit saw a torn snapshot (%d ids, expected %d)"
                !probes (List.length got) (List.length pre))
  in
  let fp = Failpoint.create { Failpoint.default with phys_write_hook = Some hook } in
  let idx = Index_file.open_ ~page_size ~crash:fp ~backend path in
  Alcotest.(check string)
    "requested backend is active" (backend_name backend) (Index_file.read_backend idx);
  handle := Some idx;
  Index_file.update idx (fun tree -> Dynamic.insert tree (extra_entry 0));
  handle := None;
  Alcotest.(check bool)
    (Printf.sprintf "the commit exposed write boundaries to probe (%d)" !probes)
    true (!probes > 0);
  let post = List.sort Int.compare (1_000_000 :: pre) in
  Index_file.with_snapshot idx (fun sv ->
      Alcotest.(check (list int)) "after the commit a fresh snapshot is post-op" post
        (snapshot_ids idx sv));
  Index_file.close idx

(* --- satellite: crash matrix, concurrent-reader-during-commit column --- *)

(* At every kill point k: a reader pins and descends at exactly the
   write the crash lands on (the hook fires, then the budget raises).
   The snapshot must be whole, fsck must find a sound tree, and the
   reopened file must be exactly pre-op or post-op. *)
let test_crash_matrix_with_pinned_reader () =
  with_temp2 @@ fun pristine work ->
  let entries = Helpers.random_entries ~n:100 ~seed:913 in
  let pre = Helpers.brute_force entries everything in
  let post = List.sort Int.compare (1_000_000 :: pre) in
  let idx0 = create_index pristine entries in
  Index_file.close idx0;
  let k = ref 0 and finished = ref false and probed = ref 0 in
  while not !finished do
    if !k > 2000 then Alcotest.fail "mvcc crash sweep did not terminate";
    copy_file pristine work;
    let handle = ref None in
    let hook ord =
      if ord = !k then
        match !handle with
        | None -> ()
        | Some idx ->
            Index_file.with_snapshot idx (fun sv ->
                incr probed;
                let got = snapshot_ids idx sv in
                if got <> pre then
                  Alcotest.failf "k=%d: reader pinned at the crashing write saw a torn snapshot"
                    !k)
    in
    let fp = Failpoint.create { (Failpoint.crash_after !k) with phys_write_hook = Some hook } in
    let idx = Index_file.open_ ~page_size ~crash:fp work in
    handle := Some idx;
    (match Index_file.update idx (fun tree -> Dynamic.insert tree (extra_entry 0)) with
    | _ ->
        Index_file.close idx;
        finished := true
    | exception Failpoint.Simulated_crash _ ->
        handle := None;
        let report = Index_file.fsck ~page_size work in
        Alcotest.(check bool)
          (Printf.sprintf "k=%d: fsck clean after crashing under a pinned reader" !k)
          true report.Index_file.fsck_tree_ok;
        let idx = Index_file.open_ ~page_size work in
        let got = live_ids idx in
        Index_file.close idx;
        if got <> pre && got <> post then
          Alcotest.failf "k=%d: crash under a pinned reader reopened to a hybrid (%d ids)" !k
            (List.length got));
    incr k
  done;
  Alcotest.(check bool)
    (Printf.sprintf "the sweep probed pinned readers at kill points (%d)" !probed)
    true (!probed > 0)

(* --- deferred frees are reclaimed: no unbounded growth --- *)

let test_bounded_growth_100_cycles () =
  with_temp @@ fun path ->
  let idx = create_index path (Helpers.random_entries ~n:80 ~seed:31) in
  Fun.protect ~finally:(fun () -> Index_file.close idx) @@ fun () ->
  let pager = Index_file.pager idx in
  let baseline = ref 0 in
  for cycle = 1 to 100 do
    (* Each cycle holds a pin across an insert+delete pair, so every
       commit parks frees and retains versions; they must all drain
       once the pin drops. *)
    let s = Index_file.snapshot idx in
    let e = extra_entry cycle in
    Index_file.update idx (fun tree -> Dynamic.insert tree e);
    Index_file.update idx (fun tree ->
        if not (Dynamic.delete tree e) then Alcotest.failf "cycle %d: delete missed" cycle);
    Index_file.release_snapshot s;
    if cycle = 5 then baseline := Pager.num_pages pager
  done;
  Index_file.update idx (fun tree -> Dynamic.insert tree (extra_entry 0));
  Index_file.update idx (fun tree -> ignore (Dynamic.delete tree (extra_entry 0)));
  let st = Pager.mvcc_stats pager in
  Alcotest.(check int) "no retained versions once every pin dropped" 0 st.Pager.live_versions;
  Alcotest.(check int) "no parked frees after the next commits" 0 st.Pager.parked_pages;
  let final = Pager.num_pages pager in
  Alcotest.(check bool)
    (Printf.sprintf "file growth bounded: %d pages at cycle 5, %d after 100 cycles" !baseline
       final)
    true
    (final <= !baseline + 16)

let suite =
  [
    Alcotest.test_case "snapshot pins survive multiple commits" `Quick
      test_snapshot_pins_old_generation;
    Alcotest.test_case "close: idempotent, releases pins" `Quick
      test_close_idempotent_and_releases_pins;
    Helpers.qcheck_case (qcheck_linearizable `Pread);
    Helpers.qcheck_case (qcheck_linearizable `Mmap);
    Alcotest.test_case "deterministic probe at every write boundary (pread)" `Quick
      (test_hook_probes_every_write_boundary `Pread);
    Alcotest.test_case "deterministic probe at every write boundary (mmap)" `Quick
      (test_hook_probes_every_write_boundary `Mmap);
    Alcotest.test_case "crash matrix: pinned reader during commit" `Quick
      test_crash_matrix_with_pinned_reader;
    Alcotest.test_case "100 update cycles: deferred frees reclaimed" `Slow
      test_bounded_growth_100_cycles;
  ]
