(* The adversarial dataset of Theorem 3, live: a query that returns
   nothing forces the classic bulk-loaded R-trees to read every leaf,
   while the PR-tree reads O(sqrt(N/B)).

   Run with: dune exec examples/worst_case.exe *)

open Prt

let () =
  let b = Node.capacity ~page_size:Pager.default_page_size in
  (* 512 columns x 113 rows of points, each column vertically shifted by
     a bit-reversal offset — innocuous to the eye, fatal to
     center-sorting and greedy-split heuristics. *)
  let wc = Datasets.worst_case ~columns_log2:9 ~b in
  let entries = wc.Datasets.entries in
  Printf.printf "dataset: %d points in a %d x %d shifted grid\n" (Array.length entries)
    wc.Datasets.columns wc.Datasets.rows;

  (* The killer query: a horizontal line that threads between all the
     points. It intersects nothing... *)
  let query = Datasets.worst_case_query wc ~row:(b / 2) in
  Printf.printf "query: horizontal line at y = %.8f (zero output guaranteed)\n\n"
    (Rect.ymin query);

  let run name load =
    let pool = memory_pool () in
    let tree = load pool entries in
    let total_leaves = (Rtree.validate tree).Rtree.leaves in
    let stats = Rtree.query_count tree query in
    assert (stats.Rtree.matched = 0);
    Printf.printf "  %-4s reads %4d of %4d leaves (%5.1f%%) for 0 results\n" name
      stats.Rtree.leaf_visited total_leaves
      (100.0 *. float_of_int stats.Rtree.leaf_visited /. float_of_int total_leaves)
  in
  run "H" Bulk.Hilbert.load_h;
  run "H4" Bulk.Hilbert.load_h4;
  run "TGS" Bulk.Tgs.load;
  run "STR" Bulk.Str.load;
  run "PR" Prtree.load;
  let sqrt_bound = sqrt (float_of_int (Array.length entries) /. float_of_int b) in
  Printf.printf "\nsqrt(N/B) = %.0f: the PR-tree's guarantee, and nobody else's.\n" sqrt_bound
