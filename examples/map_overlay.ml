(* Map overlay: spatial join between two indexed layers — roads and
   flood zones — to find every road segment that needs a flood-risk
   annotation, plus nearest-shelter lookups with the k-NN API.

   Run with: dune exec examples/map_overlay.exe *)

open Prt

let () =
  let pool = memory_pool () in

  (* Layer 1: a road network. *)
  let roads = Tiger.generate (Tiger.default_params ~n:40_000 ~seed:3) in
  let road_index = Prtree.load pool roads in

  (* Layer 2: flood zones — a few hundred larger irregular patches. *)
  let rng = Rng.create 17 in
  let zones =
    Array.init 400 (fun i ->
        let x = Rng.float rng 0.95 and y = Rng.float rng 0.95 in
        let w = 0.005 +. Rng.float rng 0.04 and h = 0.005 +. Rng.float rng 0.04 in
        Entry.make
          (Rect.make ~xmin:x ~ymin:y ~xmax:(Float.min 1.0 (x +. w)) ~ymax:(Float.min 1.0 (y +. h)))
          i)
  in
  let zone_index = Prtree.load pool zones in
  Printf.printf "layers: %d road segments, %d flood zones\n" (Array.length roads)
    (Array.length zones);

  (* The overlay: one synchronized traversal, no nested loop over data. *)
  let at_risk = Hashtbl.create 1024 in
  let stats =
    Join.pairs road_index zone_index ~f:(fun road _zone ->
        Hashtbl.replace at_risk (Entry.id road) ())
  in
  Printf.printf "overlay: %d road/zone intersections -> %d distinct at-risk segments\n"
    stats.Join.pairs (Hashtbl.length at_risk);
  Printf.printf "  (join read %d + %d nodes; a nested scan would read %d leaf pages %d times)\n"
    stats.Join.nodes_read_left stats.Join.nodes_read_right
    (Rtree.count road_index / Rtree.capacity road_index)
    (Array.length zones);

  (* Which zones are empty of roads entirely? Existence queries early
     exit on the first hit. *)
  let empty_zones =
    Array.fold_left
      (fun acc z -> if Query.exists road_index (Entry.rect z) then acc else acc + 1)
      0 zones
  in
  Printf.printf "%d flood zones contain no roads at all\n" empty_zones;

  (* Nearest shelters from a few incident points (k-NN over zones,
     standing in for shelter sites). *)
  let incidents = [ (0.2, 0.3); (0.8, 0.5); (0.5, 0.9) ] in
  List.iter
    (fun (x, y) ->
      let nearest, _ = Knn.nearest zone_index ~x ~y ~k:3 in
      let ids = List.map (fun (e, _) -> string_of_int (Entry.id e)) nearest in
      let d = match nearest with (_, d) :: _ -> d | [] -> Float.nan in
      Printf.printf "incident (%.1f, %.1f): nearest zones [%s], closest %.3f away\n" x y
        (String.concat "; " ids) d)
    incidents
