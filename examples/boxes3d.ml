(* Collision checking in three dimensions: index the bounding boxes of
   parts in an industrial installation (the motivating workload of the
   paper's reference [14]) with the d-dimensional PR-tree of Theorem 2,
   and query for everything a moving tool sweeps through.

   Run with: dune exec examples/boxes3d.exe *)

open Prt

let () =
  let dims = 3 in
  let rng = Rng.create 31 in
  (* 40K parts: mostly small boxes, a few long pipes along each axis. *)
  let n = 40_000 in
  let part i =
    let center = Array.init dims (fun _ -> Rng.float rng 1.0) in
    let half = Array.init dims (fun _ -> 0.002 +. Rng.float rng 0.01) in
    if i mod 50 = 0 then begin
      (* A pipe: stretched 50x along one axis. *)
      let axis = Rng.int rng dims in
      half.(axis) <- Float.min 0.45 (half.(axis) *. 50.0)
    end;
    let lo = Array.init dims (fun d -> Float.max 0.0 (center.(d) -. half.(d))) in
    let hi = Array.init dims (fun d -> Float.min 1.0 (center.(d) +. half.(d))) in
    Ndtree.Entry.make (Hyperrect.make ~lo ~hi) i
  in
  let parts = Array.init n part in
  let pool = memory_pool () in
  let tree = Ndtree.Prtree.load ~dims pool parts in
  let s = Ndtree.Rtree.validate tree in
  Printf.printf "indexed %d parts: height %d, %d nodes, fanout %d, utilization %.0f%%\n" n
    (Ndtree.Rtree.height tree) s.Prt_ndtree.Rtree_nd.nodes (Ndtree.Rtree.capacity tree)
    (100.0 *. s.Prt_ndtree.Rtree_nd.utilization);

  (* The tool sweep: a thin beam moving across the cell. *)
  let sweep =
    Hyperrect.make ~lo:[| 0.0; 0.48; 0.48 |] ~hi:[| 1.0; 0.52; 0.52 |]
  in
  let hits, stats = Ndtree.Rtree.query_list tree sweep in
  Printf.printf "tool sweep intersects %d parts (visited %d of %d leaves)\n" (List.length hits)
    stats.Prt_ndtree.Rtree_nd.leaf_visited s.Prt_ndtree.Rtree_nd.leaves;

  (* Verify against brute force, because collisions are safety-critical. *)
  let expected =
    Array.to_list parts
    |> List.filter (fun e -> Hyperrect.intersects (Ndtree.Entry.box e) sweep)
    |> List.length
  in
  assert (expected = List.length hits);
  Printf.printf "cross-checked against brute force: %d collisions confirmed\n" expected;

  (* Point containment probes ("can the arm pass through here?"). *)
  let clear = ref 0 in
  let probes = 1_000 in
  for _ = 1 to probes do
    let p = Hyperrect.point (Array.init dims (fun _ -> Rng.float rng 1.0)) in
    let stats = Ndtree.Rtree.query_count tree p in
    if stats.Prt_ndtree.Rtree_nd.matched = 0 then incr clear
  done;
  Printf.printf "%d of %d random probe points are collision-free\n" !clear probes
