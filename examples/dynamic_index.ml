(* A live index: sensor bounding boxes arriving and expiring in a
   stream, served by the logarithmic-method PR-tree (Section 4 of the
   paper) so that query performance never degrades the way a
   heuristically-updated R-tree's does.

   Run with: dune exec examples/dynamic_index.exe *)

open Prt

let () =
  let pool = memory_pool () in
  let index = Logmethod.create pool in
  let rng = Rng.create 2024 in

  (* A sliding window of "sensor readings": each tick inserts a fresh
     reading and expires the oldest once 20K are live. *)
  let window_size = 20_000 in
  let ticks = 60_000 in
  let live = Queue.create () in
  let fresh_reading id =
    let x = Rng.float rng 1.0 and y = Rng.float rng 1.0 in
    let w = Rng.float rng 0.002 and h = Rng.float rng 0.002 in
    Entry.make
      (Rect.make ~xmin:x ~ymin:y
         ~xmax:(Float.min 1.0 (x +. w))
         ~ymax:(Float.min 1.0 (y +. h)))
      id
  in
  let query_region = Rect.make ~xmin:0.4 ~ymin:0.4 ~xmax:0.5 ~ymax:0.5 in
  for tick = 0 to ticks - 1 do
    let reading = fresh_reading tick in
    Logmethod.insert index reading;
    Queue.add reading live;
    if Queue.length live > window_size then begin
      let expired = Queue.pop live in
      ignore (Logmethod.delete index expired)
    end;
    if tick mod 10_000 = 9_999 then begin
      let hits, stats = Logmethod.query_list index query_region in
      Printf.printf
        "tick %6d: %5d live | query -> %3d hits, %3d leaf I/Os over %d components\n" (tick + 1)
        (Logmethod.count index) (List.length hits) stats.Logmethod.leaf_visited
        stats.Logmethod.components_queried
    end
  done;

  (* The components always form a geometric ladder: *)
  Printf.printf "\ncomponent ladder (slot, entries): ";
  List.iter (fun (slot, n) -> Printf.printf "(%d, %d) " slot n) (Logmethod.components index);
  print_newline ();
  Logmethod.validate index;
  Printf.printf "validated: every component is a structurally sound PR-tree\n"
