(* A GIS scenario: index a road network (the paper's motivating
   workload) and serve map-viewport queries, comparing the PR-tree with
   the classic bulk loaders on both typical and degenerate inputs.

   Run with: dune exec examples/gis_roads.exe *)

open Prt

let build_and_measure name load entries queries =
  let pool = memory_pool () in
  let tree = load pool entries in
  let leaves = ref 0 and results = ref 0 in
  Array.iter
    (fun q ->
      let s = Rtree.query_count tree q in
      leaves := !leaves + s.Rtree.leaf_visited;
      results := !results + s.Rtree.matched)
    queries;
  let n = Array.length queries in
  Printf.printf "  %-4s %6.1f leaf I/Os per viewport (%.0f road segments returned)\n" name
    (float_of_int !leaves /. float_of_int n)
    (float_of_int !results /. float_of_int n)

let contenders =
  [
    ("PR", fun pool entries -> Prtree.load pool entries);
    ("H", fun pool entries -> Bulk.Hilbert.load_h pool entries);
    ("H4", fun pool entries -> Bulk.Hilbert.load_h4 pool entries);
    ("TGS", Bulk.Tgs.load);
    ("STR", Bulk.Str.load);
  ]

let () =
  (* A synthetic road network: ~60K segment bounding boxes clustered
     around urban centers (see Prt.Tiger for the generator). *)
  let entries = Tiger.generate (Tiger.default_params ~n:60_000 ~seed:7) in
  Printf.printf "road network: %d segment rectangles\n" (Array.length entries);

  (* Map viewports: square windows covering 0.5%% of the map. *)
  let world = Queries.world_of entries in
  let viewports = Queries.squares ~count:50 ~area_fraction:0.005 ~world ~seed:11 in
  Printf.printf "\ntypical map viewports (0.5%% of the map):\n";
  List.iter (fun (name, load) -> build_and_measure name load entries viewports) contenders;

  (* Degenerate but realistic: settlements strung along an east-west
     corridor, searched with long skinny corridor queries (the paper's
     CLUSTER stress case, Table 1). *)
  let corridor_towns = Datasets.cluster ~n_clusters:700 ~per_cluster:85 ~seed:13 in
  let corridor_queries = Queries.cluster_strips ~count:50 ~seed:17 in
  Printf.printf "\ncorridor search over %d clustered settlements:\n"
    (Array.length corridor_towns);
  List.iter
    (fun (name, load) -> build_and_measure name load corridor_towns corridor_queries)
    contenders;

  Printf.printf "\non nice data everyone is close; on extreme data the PR-tree is robust.\n"
