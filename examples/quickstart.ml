(* Quickstart: build a PR-tree over a handful of rectangles, run a
   window query, and inspect the index.

   Run with: dune exec examples/quickstart.exe *)

open Prt

let () =
  (* Some rectangles: city blocks, say. *)
  let rects =
    [|
      Rect.make ~xmin:0.0 ~ymin:0.0 ~xmax:2.0 ~ymax:1.0;
      Rect.make ~xmin:1.5 ~ymin:0.5 ~xmax:3.0 ~ymax:2.0;
      Rect.make ~xmin:4.0 ~ymin:4.0 ~xmax:5.0 ~ymax:5.0;
      Rect.make ~xmin:0.2 ~ymin:3.0 ~xmax:0.8 ~ymax:4.2;
      Rect.point 2.5 2.5;
    |]
  in
  (* One call: an in-memory pool with 4 KB pages and a bulk-loaded
     PR-tree. Ids are array positions. *)
  let tree = prtree rects in
  Printf.printf "indexed %d rectangles; height %d; node capacity %d\n" (Rtree.count tree)
    (Rtree.height tree) (Rtree.capacity tree);

  (* A window query: everything intersecting [1,4.2] x [0,3]. *)
  let window = Rect.make ~xmin:1.0 ~ymin:0.0 ~xmax:4.2 ~ymax:3.0 in
  let hits, stats = Rtree.query_list tree window in
  Printf.printf "query %s -> %d hits (%d nodes touched):\n"
    (Format.asprintf "%a" Rect.pp window)
    stats.Rtree.matched
    (Rtree.nodes_visited stats);
  List.iter
    (fun e ->
      Printf.printf "  rect #%d = %s\n" (Entry.id e) (Format.asprintf "%a" Rect.pp (Entry.rect e)))
    hits;

  (* The index is a normal R-tree: update it in place... *)
  Dynamic.insert tree (Entry.make (Rect.make ~xmin:2.0 ~ymin:2.0 ~xmax:2.6 ~ymax:2.6) 99);
  let hits, _ = Rtree.query_list tree window in
  Printf.printf "after insert: %d hits\n" (List.length hits);

  (* ...and validate its structural invariants at any time. *)
  let s = Rtree.validate tree in
  Printf.printf "validated: %d nodes, %d leaves, utilization %.0f%%\n" s.Rtree.nodes
    s.Rtree.leaves
    (100.0 *. s.Rtree.utilization)
